"""Tests for the verbatim Table I API surface."""

import pytest

from repro.errors import (InvalidOIDError, PermissionDeniedError,
                          PoolExistsError)
from repro.pmo.api import PoolContext, _parse_mode
from repro.permissions import Perm


@pytest.fixture
def pm():
    return PoolContext()


class TestModeStrings:
    @pytest.mark.parametrize("mode,expected", [
        ("rw", (Perm.RW, Perm.NONE)),
        ("r", (Perm.R, Perm.NONE)),
        ("rw,r", (Perm.RW, Perm.R)),
        ("rw,rw", (Perm.RW, Perm.RW)),
        ("r,none", (Perm.R, Perm.NONE)),
    ])
    def test_parse(self, mode, expected):
        assert _parse_mode(mode) == expected

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            _parse_mode("x")


class TestTableIFlow:
    """The paper's canonical usage, end to end."""

    def test_create_root_pmalloc_pfree_close(self, pm):
        pool = pm.pool_create("accounts", 8 << 20, "rw")
        root = pm.pool_root(pool, 64)
        node = pm.pmalloc(pool, 128)
        pool.write_u64(root.offset, node.pack())
        got_pool, offset = pm.oid_direct(node)
        assert got_pool is pool and offset == node.offset
        pm.pfree(node)
        pm.pool_close(pool)

    def test_reopen_with_permission_check(self, pm):
        pool = pm.pool_create("shared", 1 << 20, "rw,r")
        pm.pool_close(pool)
        other = PoolContext(pm.manager, uid=99)
        assert other.pool_open("shared", "r")
        with pytest.raises(PermissionDeniedError):
            other.pool_open("shared", "rw")

    def test_root_is_stable_across_reopen(self, pm):
        pool = pm.pool_create("p", 1 << 20)
        root = pm.pool_root(pool, 32)
        pm.pool_close(pool)
        reopened = pm.pool_open("p")
        assert pm.pool_root(reopened, 32) == root

    def test_duplicate_create_rejected(self, pm):
        pm.pool_create("p", 1 << 20)
        with pytest.raises(PoolExistsError):
            pm.pool_create("p", 1 << 20)

    def test_pfree_via_context_routes_to_owning_pool(self, pm):
        a = pm.pool_create("a", 1 << 20)
        b = pm.pool_create("b", 1 << 20)
        oid_a = pm.pmalloc(a, 64)
        oid_b = pm.pmalloc(b, 64)
        pm.pfree(oid_a)
        pm.pfree(oid_b)
        with pytest.raises(InvalidOIDError):
            pm.pfree(oid_a)  # double free detected

    def test_pmalloc_alignment_passthrough(self, pm):
        pool = pm.pool_create("p", 1 << 20)
        node = pm.pmalloc(pool, 4096, align=4096)
        assert node.offset % 4096 == 0
