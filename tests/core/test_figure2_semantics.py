"""Figure 2 — temporal and spatial protection semantics, per scheme.

Part (a): a thread attaches a PMO, and loads/stores are only legal inside
the window between granting and revoking the matching permission.
Part (b): permissions are thread-specific — another thread that never
obtained permission is denied.

Every scheme that enforces protection must reproduce these outcomes.
"""

import pytest

from repro.permissions import Perm

ENFORCING_SCHEMES = ("mpk", "mpk_virt", "domain_virt", "libmpk")


@pytest.fixture(params=ENFORCING_SCHEMES)
def h(request, harness):
    return harness(request.param)


class TestTemporalIsolation:
    """Figure 2(a): the same thread over time."""

    def test_attached_but_no_permission_denies_load(self, h):
        domain = h.add_pmo(initial=Perm.NONE)
        assert not h.access(domain)

    def test_plus_r_allows_load_but_not_store(self, h):
        domain = h.add_pmo(initial=Perm.NONE)
        h.setperm(domain, Perm.R)
        assert h.access(domain)                 # ld A
        assert not h.access(domain, is_write=True)  # st B denied

    def test_plus_w_allows_store(self, h):
        domain = h.add_pmo(initial=Perm.NONE)
        h.setperm(domain, Perm.R)
        h.setperm(domain, Perm.RW)
        assert h.access(domain, is_write=True)  # st C

    def test_revocation_denies_subsequent_load(self, h):
        domain = h.add_pmo(initial=Perm.NONE)
        h.setperm(domain, Perm.RW)
        assert h.access(domain)
        h.setperm(domain, Perm.NONE)
        assert not h.access(domain)             # ld D denied

    def test_revocation_applies_on_tlb_hit_path(self, h):
        # The access right after the grant warms the TLB; revocation must
        # still bite even though the translation is cached.
        domain = h.add_pmo(initial=Perm.NONE)
        h.setperm(domain, Perm.RW)
        assert h.access(domain, offset=4096)
        h.setperm(domain, Perm.NONE)
        assert not h.access(domain, offset=4096)


class TestSpatialIsolation:
    """Figure 2(b): two threads, different rights on the same PMO."""

    def test_other_thread_denied(self, h):
        domain = h.add_pmo(initial=Perm.NONE)
        t2 = h.spawn_thread()
        h.setperm(domain, Perm.RW)              # thread 1 grants itself RW
        assert h.access(domain, is_write=True)  # t1: st A permitted
        h.context_switch(h.tid, t2)
        assert not h.access(domain, tid=t2)     # t2: ld A denied

    def test_other_thread_with_read_only_cannot_write(self, h):
        domain = h.add_pmo(initial=Perm.NONE)
        t2 = h.spawn_thread()
        h.setperm(domain, Perm.RW)
        h.context_switch(h.tid, t2)
        h.setperm(domain, Perm.R, tid=t2)
        assert h.access(domain, tid=t2)
        assert not h.access(domain, tid=t2, is_write=True)  # st B denied

    def test_grants_are_independent_across_threads(self, h):
        domain = h.add_pmo(initial=Perm.NONE)
        t2 = h.spawn_thread()
        h.setperm(domain, Perm.RW)
        h.context_switch(h.tid, t2)
        h.setperm(domain, Perm.RW, tid=t2)
        h.setperm(domain, Perm.NONE, tid=t2)    # t2 revokes its own only
        h.context_switch(t2, h.tid)
        assert h.access(domain, is_write=True)  # t1 still has RW


class TestPagePermissionInteraction:
    """The strictest of page and domain permission wins (Figure 3)."""

    def test_read_only_attachment_blocks_writes_despite_domain_rw(self, h):
        domain = h.add_pmo(intent=Perm.R, initial=Perm.NONE)
        h.setperm(domain, Perm.RW)
        assert h.access(domain)
        assert not h.access(domain, is_write=True)


class TestDomainlessAccess:
    """NULL-domain pages bypass domain checking entirely."""

    @pytest.mark.parametrize("scheme", ENFORCING_SCHEMES)
    def test_volatile_memory_unaffected(self, harness, scheme):
        h = harness(scheme)
        from repro.mem.tlb import TLBEntry
        vma = h.kernel.map_volatile(h.process, 1 << 16)
        pte = h.kernel.ensure_mapped(h.process, vma.base)
        pkey, domain = h.scheme.fill_tags(vma, h.tid)
        assert domain == 0
        entry = TLBEntry(vpn=vma.base >> 12, pfn=pte.pfn, perm=pte.perm,
                         pkey=pkey, domain=domain)
        assert h.scheme.check_access(h.tid, entry, True)
