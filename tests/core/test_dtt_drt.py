"""Tests for the DTT and DRT radix tables."""

import pytest

from repro.core.drt import DomainRangeTable
from repro.core.dtt import NO_KEY, DomainTranslationTable
from repro.errors import DomainError
from repro.permissions import Perm
from repro.os.address_space import GB1, KB4, MB2, VMA


def vma(domain, base, size, granule):
    reserved = -(-size // granule) * granule
    return VMA(base=base, reserved=reserved, size=size, pmo_id=domain,
               granule=granule, is_nvm=True)


@pytest.fixture(params=[DomainTranslationTable, DomainRangeTable])
def table(request):
    return request.param()


class TestRadixCommon:
    """Behaviour shared by the DTT and DRT (same radix organisation)."""

    def test_walk_finds_4kb_domain(self, table):
        table.add(vma(7, 0x2000_0000_0000, KB4, KB4))
        entry = table.walk(0x2000_0000_0000 + 100)
        assert entry.domain == 7

    def test_walk_finds_2mb_domain(self, table):
        table.add(vma(8, 0x2000_0020_0000, MB2, MB2))
        assert table.walk(0x2000_0020_0000 + MB2 - 1).domain == 8

    def test_walk_finds_1gb_domain(self, table):
        table.add(vma(9, 0x2000_4000_0000, 8 << 20, GB1))
        assert table.walk(0x2000_4000_0000 + (5 << 20)).domain == 9

    def test_walk_outside_any_domain_is_null(self, table):
        table.add(vma(7, 0x2000_0000_0000, KB4, KB4))
        assert table.walk(0x7000_0000_0000) is None

    def test_adjacent_4kb_domains_are_distinct(self, table):
        table.add(vma(1, 0x2000_0000_0000, KB4, KB4))
        table.add(vma(2, 0x2000_0000_1000, KB4, KB4))
        assert table.walk(0x2000_0000_0000).domain == 1
        assert table.walk(0x2000_0000_1000).domain == 2

    def test_multi_granule_domain_covers_all_chunks(self, table):
        # A 3GB PMO takes three consecutive 1GB granules.
        table.add(vma(3, 0x2000_8000_0000, 3 * GB1, GB1))
        for chunk in range(3):
            addr = 0x2000_8000_0000 + chunk * GB1 + 12345
            assert table.walk(addr).domain == 3

    def test_duplicate_domain_rejected(self, table):
        table.add(vma(5, 0x2000_0000_0000, KB4, KB4))
        with pytest.raises(DomainError):
            table.add(vma(5, 0x2000_0000_2000, KB4, KB4))

    def test_remove_clears_mapping(self, table):
        table.add(vma(5, 0x2000_0000_0000, KB4, KB4))
        table.remove(5)
        assert table.walk(0x2000_0000_0000) is None
        assert 5 not in table

    def test_remove_unknown_domain(self, table):
        with pytest.raises(DomainError):
            table.remove(42)

    def test_len_and_contains(self, table):
        table.add(vma(1, 0x2000_0000_0000, KB4, KB4))
        table.add(vma(2, 0x2000_4000_0000, MB2, MB2))
        assert len(table) == 2
        assert 1 in table and 2 in table and 3 not in table

    def test_walk_count_increments(self, table):
        table.add(vma(1, 0x2000_0000_0000, KB4, KB4))
        table.walk(0x2000_0000_0000)
        table.walk(0x2000_0000_0000)
        assert table.walk_count == 2


class TestDTTSpecifics:
    def test_new_entry_has_no_key(self):
        dtt = DomainTranslationTable()
        entry = dtt.add(vma(1, 0x2000_0000_0000, 8 << 20, GB1))
        assert entry.key == NO_KEY

    def test_per_thread_permissions_default_none(self):
        dtt = DomainTranslationTable()
        entry = dtt.add(vma(1, 0x2000_0000_0000, KB4, KB4))
        assert entry.perm_for(tid=123) == Perm.NONE
        entry.perms[123] = Perm.R
        assert entry.perm_for(123) == Perm.R
        assert entry.perm_for(124) == Perm.NONE

    def test_by_domain_lookup(self):
        dtt = DomainTranslationTable()
        dtt.add(vma(4, 0x2000_0000_0000, KB4, KB4))
        assert dtt.by_domain(4).domain == 4
        with pytest.raises(DomainError):
            dtt.by_domain(5)

    def test_n_pages(self):
        dtt = DomainTranslationTable()
        entry = dtt.add(vma(1, 0x2000_0000_0000, 8 << 20, GB1))
        assert entry.n_pages == GB1 // KB4

    def test_removed_entry_marked_invalid(self):
        dtt = DomainTranslationTable()
        entry = dtt.add(vma(1, 0x2000_0000_0000, KB4, KB4))
        dtt.remove(1)
        assert not entry.valid
