"""Behavior tests for the four literature-competitor schemes.

Each scheme's *distinguishing* mechanics are pinned here — the
cost-shape contracts their CostDescriptors promise (docs/SCHEMES.md):

* erim: call-gate switch cost, direct key mapping, hard 16-key wall;
* pks_seal: first assignments seal their keys, sealed keys are never
  remap victims;
* dpti: CR3-switch cost, no keys, domain-close TLB flush;
* poe2: 64-overlay space (no evictions until 65 domains), POR-priced
  switches, cheaper shootdowns.

Bit-identity between the engines is covered by tests/cpu; accounting
across layers by tests/service and tests/integration.
"""

import pytest

from repro.errors import PkeyError
from repro.permissions import Perm
from repro.sim.config import DEFAULT_CONFIG


class TestErim:
    def test_domains_map_directly_onto_keys(self, harness):
        h = harness("erim")
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(16)]
        assert all(h.access(d) for d in domains)
        assert h.stats.evictions == 0  # nothing virtualizes, ever

    def test_seventeenth_domain_hits_the_wall(self, harness):
        h = harness("erim")
        for _ in range(16):
            h.add_pmo(size=1 << 20)
        with pytest.raises(PkeyError, match="ERIM 16-key limit"):
            h.add_pmo(size=1 << 20)

    def test_detach_frees_the_key(self, harness):
        h = harness("erim")
        domains = [h.add_pmo(size=1 << 20) for _ in range(16)]
        h.scheme.detach_domain(domains[0])
        h.add_pmo(size=1 << 20)  # the freed key is reusable

    def test_switch_costs_the_call_gate(self, harness):
        h = harness("erim")
        domain = h.add_pmo(initial=Perm.R)
        before = h.stats.buckets["perm_change"]
        h.setperm(domain, Perm.RW)
        gate = DEFAULT_CONFIG.erim.call_gate_cycles
        assert h.stats.buckets["perm_change"] - before == gate
        assert gate > DEFAULT_CONFIG.mpk.wrpkru_cycles


class TestPksSeal:
    def _churn(self, h, n_domains):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(n_domains)]
        for domain in domains:
            h.access(domain)
        return domains

    def test_first_assignments_seal_their_keys(self, harness):
        h = harness("pks_seal")
        self._churn(h, 8)
        assert len(h.scheme._sealed) == 8

    def test_seal_population_is_bounded(self, harness):
        h = harness("pks_seal")
        self._churn(h, 40)
        assert len(h.scheme._sealed) == \
            DEFAULT_CONFIG.pks_seal.sealable_keys

    def test_sealed_keys_are_never_evicted(self, harness):
        h = harness("pks_seal")
        domains = self._churn(h, 40)
        sealed_keys = set(h.scheme._sealed)
        # The first 8 domains took the sealed keys; their mappings must
        # have survived all the churn of the other 32.
        for domain in domains[:8]:
            entry = h.scheme.dtt.by_domain(domain)
            assert entry.key in sealed_keys
        # And every eviction victim was an unsealed key.
        assert h.stats.evictions > 0

    def test_detach_releases_the_seal(self, harness):
        h = harness("pks_seal")
        domains = self._churn(h, 8)
        h.scheme.detach_domain(domains[0])
        assert len(h.scheme._sealed) == 7

    def test_matches_mpk_virt_when_nothing_evicts(self, harness):
        # Below the key space the seal never engages: byte-identical
        # charging to plain MPK virtualization.
        a, b = harness("pks_seal"), harness("mpk_virt")
        for h in (a, b):
            for domain in [h.add_pmo(size=1 << 20, initial=Perm.R)
                           for _ in range(12)]:
                h.access(domain)
                h.setperm(domain, Perm.RW)
        assert a.stats.buckets == b.stats.buckets


class TestDpti:
    def test_unbounded_domains(self, harness):
        h = harness("dpti")
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(40)]
        assert all(h.access(d) for d in domains)
        assert h.stats.evictions == 0

    def test_switch_costs_a_cr3_write(self, harness):
        h = harness("dpti")
        domain = h.add_pmo(initial=Perm.R)
        before = h.stats.buckets["perm_change"]
        h.setperm(domain, Perm.RW)
        assert h.stats.buckets["perm_change"] - before == \
            DEFAULT_CONFIG.dpti.cr3_switch_cycles

    def test_closing_a_domain_flushes_its_translations(self, harness):
        h = harness("dpti")
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)  # one TLB entry tagged with the domain
        before = h.stats.tlb_entries_invalidated
        h.setperm(domain, Perm.NONE)
        assert h.stats.tlb_entries_invalidated > before

    def test_reclosing_a_closed_domain_flushes_nothing(self, harness):
        h = harness("dpti")
        domain = h.add_pmo(initial=Perm.NONE)
        before = h.stats.tlb_entries_invalidated
        h.setperm(domain, Perm.NONE)
        assert h.stats.tlb_entries_invalidated == before

    def test_no_shootdown_broadcasts(self, harness):
        h = harness("dpti")
        h.spawn_thread()
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        h.setperm(domain, Perm.NONE)
        assert h.stats.cross_core_shootdowns == 0
        assert h.stats.buckets["tlb_invalidations"] == 0

    def test_access_respects_the_mapped_view(self, harness):
        h = harness("dpti")
        domain = h.add_pmo(initial=Perm.R)
        assert h.access(domain)
        assert not h.access(domain, is_write=True)
        h.setperm(domain, Perm.RW)
        assert h.access(domain, is_write=True)


class TestPoe2:
    def test_no_evictions_up_to_64_domains(self, harness):
        h = harness("poe2")
        for domain in [h.add_pmo(size=1 << 20, initial=Perm.R)
                       for _ in range(64)]:
            h.access(domain)
        assert h.stats.evictions == 0

    def test_65th_active_domain_evicts(self, harness):
        h = harness("poe2")
        for domain in [h.add_pmo(size=1 << 20, initial=Perm.R)
                       for _ in range(65)]:
            h.access(domain)
        assert h.stats.evictions == 1

    def test_switch_costs_the_por_write(self, harness):
        h = harness("poe2")
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)  # give the domain an overlay
        before = h.stats.buckets["perm_change"]
        h.setperm(domain, Perm.RW)
        charged = h.stats.buckets["perm_change"] - before
        por = DEFAULT_CONFIG.poe2.por_switch_cycles
        assert charged >= por
        assert por < DEFAULT_CONFIG.mpk.wrpkru_cycles

    def test_shootdowns_are_cheaper_than_x86(self, harness):
        cfg = DEFAULT_CONFIG
        assert cfg.poe2.tlb_invalidation_cycles < \
            cfg.mpk_virt.tlb_invalidation_cycles
