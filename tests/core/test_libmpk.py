"""Tests for the libmpk software-virtualization baseline."""

import pytest

from repro.permissions import Perm


@pytest.fixture
def h(harness):
    return harness("libmpk")


class TestEvictionCosts:
    def test_first_16_domains_no_eviction(self, h):
        domains = [h.add_pmo(size=1 << 20) for _ in range(16)]
        for domain in domains:
            h.setperm(domain, Perm.RW)
        assert h.stats.evictions == 0

    def test_17th_domain_evicts_lru(self, h):
        domains = [h.add_pmo(size=1 << 20) for _ in range(17)]
        for domain in domains:
            h.setperm(domain, Perm.RW)
        assert h.stats.evictions == 1
        # The LRU victim was the first-touched domain.
        assert domains[0] not in h.scheme._key_of

    def test_eviction_cost_scales_with_mapped_pages(self, harness):
        """libmpk's pkey_mprotect rewrites one PTE per mapped page — the
        cost driver distinguishing it from the hardware schemes."""
        def eviction_cost(pages_touched):
            h = harness("libmpk")
            domains = [h.add_pmo(size=8 << 20) for _ in range(17)]
            # Map `pages_touched` pages in the first (future victim) pool.
            for page in range(pages_touched):
                h.access(domains[0], offset=4096 * (1 + page))
            h.stats.buckets["libmpk"] = 0.0
            for domain in domains[1:]:
                h.setperm(domain, Perm.RW)
            return h.stats.buckets["libmpk"], h.stats.pte_rewrites

        small_cost, small_ptes = eviction_cost(2)
        large_cost, large_ptes = eviction_cost(50)
        assert large_ptes > small_ptes
        assert large_cost > small_cost

    def test_exception_and_syscall_charged(self, h):
        domains = [h.add_pmo(size=1 << 20) for _ in range(17)]
        for domain in domains:
            h.setperm(domain, Perm.RW)
        cfg = h.config.libmpk
        # 17 faults (initial mappings) of which 1 evicts (2 syscalls).
        expected_min = 17 * (cfg.exception_cycles + cfg.syscall_cycles) \
            + cfg.syscall_cycles
        assert h.stats.buckets["libmpk"] >= expected_min

    def test_shootdown_on_every_fault_map(self, h):
        h.add_pmo(size=1 << 20)
        h.setperm(1, Perm.RW)
        assert h.stats.buckets["tlb_invalidations"] > 0


class TestKeyCacheBehaviour:
    def test_cached_pkey_set_costs_only_wrpkru(self, h):
        domain = h.add_pmo()
        h.setperm(domain, Perm.RW)  # fault-maps
        libmpk_before = h.stats.buckets["libmpk"]
        h.setperm(domain, Perm.NONE)
        h.setperm(domain, Perm.RW)
        assert h.stats.buckets["libmpk"] == libmpk_before
        assert h.stats.buckets["perm_change"] == 3 * 27

    def test_access_to_unmapped_domain_triggers_remap(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(17)]
        for domain in domains:
            h.access(domain)
        assert h.stats.evictions >= 1

    def test_lru_updated_by_pkey_set(self, h):
        # libmpk's software LRU sees API calls and faults, not TLB-hit
        # accesses; a pkey_set refreshes the domain's recency.
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(16)]
        for domain in domains:
            h.access(domain)
        h.setperm(domains[0], Perm.R)  # refresh domain 0
        extra = h.add_pmo(size=1 << 20, initial=Perm.R)
        h.access(extra)  # evicts the LRU, which is now domains[1]
        assert domains[0] in h.scheme._key_of
        assert domains[1] not in h.scheme._key_of

    def test_detach_frees_key(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        free_before = len(h.scheme._free_keys)
        h.scheme.detach_domain(domain)
        assert len(h.scheme._free_keys) == free_before + 1


class TestComparisonWithHardware:
    def test_libmpk_eviction_is_costlier_than_mpk_virt(self, harness):
        """Section IV-D: both virtualize keys, but libmpk pays syscalls
        and per-PTE rewrites where the hardware remaps in place."""
        def total_overhead(name):
            h = harness(name)
            domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                       for _ in range(32)]
            for _ in range(3):
                for domain in domains:
                    h.access(domain)
            return h.stats.overhead_cycles

        assert total_overhead("libmpk") > 3 * total_overhead("mpk_virt")
