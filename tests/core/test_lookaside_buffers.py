"""Tests for the DTTLB and PTLB hardware buffers."""

import pytest

from repro.core.dttlb import DTTLB, DTTLBEntry
from repro.core.permission_table import PTLB, PermissionTable, PTLBEntry
from repro.permissions import Perm


class TestDTTLB:
    def make_entry(self, domain, key=1, perm=Perm.RW):
        return DTTLBEntry(domain=domain, key=key, perm=perm)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            DTTLB(12)

    def test_miss_then_hit(self):
        buf = DTTLB(16)
        assert buf.lookup(5) is None
        buf.insert(self.make_entry(5))
        assert buf.lookup(5).domain == 5
        assert buf.hits == 1 and buf.misses == 1

    def test_capacity_and_eviction(self):
        buf = DTTLB(4)
        for domain in range(5):
            buf.insert(self.make_entry(domain))
        assert len(buf) == 4

    def test_eviction_returns_victim(self):
        buf = DTTLB(2)
        buf.insert(self.make_entry(1))
        buf.insert(self.make_entry(2))
        victim = buf.insert(self.make_entry(3))
        assert victim is not None
        assert victim.domain in (1, 2)

    def test_plru_spares_recent(self):
        buf = DTTLB(4)
        for domain in range(4):
            buf.insert(self.make_entry(domain))
        buf.lookup(3)
        victim = buf.insert(self.make_entry(9))
        assert victim.domain != 3

    def test_reinsert_same_domain_updates_in_place(self):
        buf = DTTLB(4)
        buf.insert(self.make_entry(1, key=2))
        assert buf.insert(self.make_entry(1, key=5)) is None
        assert buf.lookup(1).key == 5

    def test_invalidate(self):
        buf = DTTLB(4)
        buf.insert(self.make_entry(1))
        removed = buf.invalidate(1)
        assert removed.domain == 1
        assert buf.lookup(1) is None
        assert buf.invalidate(1) is None

    def test_flush_returns_only_dirty(self):
        buf = DTTLB(4)
        clean = self.make_entry(1)
        dirty = self.make_entry(2)
        dirty.dirty = True
        buf.insert(clean)
        buf.insert(dirty)
        flushed = buf.flush()
        assert [e.domain for e in flushed] == [2]
        assert len(buf) == 0

    def test_peek_does_not_count(self):
        buf = DTTLB(4)
        buf.insert(self.make_entry(1))
        buf.peek(1)
        buf.peek(2)
        assert buf.hits == 0 and buf.misses == 0

    def test_slot_reuse_after_invalidate(self):
        buf = DTTLB(2)
        buf.insert(self.make_entry(1))
        buf.insert(self.make_entry(2))
        buf.invalidate(1)
        # Free slot is reused; no eviction needed.
        assert buf.insert(self.make_entry(3)) is None
        assert len(buf) == 2


class TestPTLB:
    def test_miss_then_hit(self):
        buf = PTLB(16)
        assert buf.lookup(5) is None
        buf.insert(PTLBEntry(domain=5, perm=Perm.R))
        assert buf.lookup(5).perm == Perm.R

    def test_eviction_at_capacity(self):
        buf = PTLB(4)
        victims = [buf.insert(PTLBEntry(domain=d, perm=Perm.R))
                   for d in range(6)]
        assert len(buf) == 4
        assert sum(v is not None for v in victims) == 2

    def test_flush_returns_dirty_for_pt_writeback(self):
        buf = PTLB(4)
        entry = PTLBEntry(domain=1, perm=Perm.RW, dirty=True)
        buf.insert(entry)
        buf.insert(PTLBEntry(domain=2, perm=Perm.R))
        assert [e.domain for e in buf.flush()] == [1]
        assert buf.writebacks == 1

    def test_invalidate(self):
        buf = PTLB(4)
        buf.insert(PTLBEntry(domain=3, perm=Perm.R))
        assert buf.invalidate(3).domain == 3
        assert 3 not in buf


class TestPermissionTable:
    def test_default_is_none(self):
        pt = PermissionTable()
        assert pt.get(domain=1, tid=1) == Perm.NONE

    def test_set_get_per_thread(self):
        pt = PermissionTable()
        pt.set(1, 100, Perm.RW)
        pt.set(1, 200, Perm.R)
        assert pt.get(1, 100) == Perm.RW
        assert pt.get(1, 200) == Perm.R
        assert pt.get(1, 300) == Perm.NONE

    def test_register_and_drop_domain(self):
        pt = PermissionTable()
        pt.register_domain(5)
        assert 5 in pt
        pt.set(5, 1, Perm.RW)
        pt.drop_domain(5)
        assert 5 not in pt
        assert pt.get(5, 1) == Perm.NONE

    def test_lookup_counter(self):
        pt = PermissionTable()
        pt.get(1, 1)
        pt.get(1, 1)
        assert pt.lookups == 2

    def test_domains_listing(self):
        pt = PermissionTable()
        pt.register_domain(3)
        pt.register_domain(1)
        assert pt.domains() == [1, 3]
