"""Tests for the permission lattice and wire encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.permissions import (Perm, check_access, parse_perm,
                               perm_to_pkru_bits, perm_to_ptlb_bits,
                               pkru_bits_to_perm, ptlb_bits_to_perm,
                               strictest)

ALL_PERMS = [Perm.NONE, Perm.R, Perm.RW]


class TestLattice:
    def test_ordering(self):
        assert Perm.NONE < Perm.R < Perm.RW

    @given(st.sampled_from(ALL_PERMS), st.sampled_from(ALL_PERMS))
    def test_strictest_is_meet(self, a, b):
        meet = strictest(a, b)
        assert meet <= a and meet <= b
        assert meet in (a, b)

    @given(st.sampled_from(ALL_PERMS), st.sampled_from(ALL_PERMS))
    def test_strictest_commutative(self, a, b):
        assert strictest(a, b) == strictest(b, a)

    def test_allows(self):
        assert not Perm.NONE.allows(is_write=False)
        assert Perm.R.allows(is_write=False)
        assert not Perm.R.allows(is_write=True)
        assert Perm.RW.allows(is_write=True)

    def test_check_access_takes_strictest(self):
        # Page RW but domain R: writes denied (the MMU comparison of Fig 3).
        assert check_access(Perm.RW, Perm.R, is_write=False)
        assert not check_access(Perm.RW, Perm.R, is_write=True)
        # Page R but domain RW: page wins for writes.
        assert not check_access(Perm.R, Perm.RW, is_write=True)

    def test_readable_writable_properties(self):
        assert Perm.R.readable and not Perm.R.writable
        assert Perm.RW.readable and Perm.RW.writable
        assert not Perm.NONE.readable


class TestEncodings:
    @given(st.sampled_from(ALL_PERMS))
    def test_pkru_roundtrip(self, perm):
        assert pkru_bits_to_perm(perm_to_pkru_bits(perm)) == perm

    @given(st.sampled_from(ALL_PERMS))
    def test_ptlb_roundtrip(self, perm):
        assert ptlb_bits_to_perm(perm_to_ptlb_bits(perm)) == perm

    def test_pkru_none_sets_access_disable(self):
        assert perm_to_pkru_bits(Perm.NONE) & 0b01

    def test_pkru_readonly_sets_write_disable_only(self):
        assert perm_to_pkru_bits(Perm.R) == 0b10

    def test_pkru_rw_is_zero(self):
        assert perm_to_pkru_bits(Perm.RW) == 0

    def test_ptlb_encoding_matches_paper(self):
        # Section IV-E: 1x inaccessible, 01 read-only, 00 read/write.
        assert perm_to_ptlb_bits(Perm.NONE) & 0b10
        assert perm_to_ptlb_bits(Perm.R) == 0b01
        assert perm_to_ptlb_bits(Perm.RW) == 0b00


class TestParse:
    @pytest.mark.parametrize("text,expected", [
        ("none", Perm.NONE), ("r", Perm.R), ("rw", Perm.RW),
        ("READ", Perm.R), (" write ", Perm.RW), ("-", Perm.NONE),
    ])
    def test_accepts_aliases(self, text, expected):
        assert parse_perm(text) == expected

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_perm("execute")
