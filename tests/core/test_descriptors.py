"""CostDescriptor contract: validation, derivations, kernel selection.

The descriptor is the scheme layer's declarative seam — the fast
engine, multicore attribution, serving fragility, and FAIL labels all
derive from it instead of pattern-matching on classes.  These tests pin
the vocabulary validation, the per-scheme declarations, and the
descriptor -> fused-kernel-family mapping.
"""

import pytest

from repro.core.schemes import (CostDescriptor, ProtectionScheme,
                                hard_domain_limit, scheme_by_name,
                                scheme_descriptor, schemes_tagged,
                                supports_domain_count)
from repro.cpu.fast_timing import kernel_for, supports_fast_replay
from repro.sim.config import DEFAULT_CONFIG

ALL_SCHEMES = ("lowerbound", "mpk", "mpk_virt", "domain_virt", "libmpk",
               "erim", "pks_seal", "dpti", "poe2")


class TestValidation:
    def test_default_descriptor_is_free(self):
        desc = CostDescriptor()
        assert desc.switch == "none"
        assert desc.check == "page"
        assert desc.hard_domain_limit is None

    def test_unknown_switch_rejected(self):
        with pytest.raises(ValueError, match="switch kind"):
            CostDescriptor(switch="hypercall")

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="check kind"):
            CostDescriptor(check="oracle")

    def test_unknown_collapse_rejected(self):
        with pytest.raises(ValueError, match="collapse kind"):
            CostDescriptor(collapse="wrap")

    def test_collapse_needs_key_space(self):
        with pytest.raises(ValueError, match="key_space"):
            CostDescriptor(collapse="fault")
        with pytest.raises(ValueError, match="key_space"):
            CostDescriptor(collapse="evict")

    def test_broadcast_requires_tlb_invalidation(self):
        with pytest.raises(ValueError, match="invalidating TLB"):
            CostDescriptor(broadcast_shootdown=True)


class TestDerivations:
    def test_fault_collapse_yields_a_limit(self):
        desc = CostDescriptor(check="pkru", key_space=16, reserved_keys=1,
                              collapse="fault")
        assert desc.hard_domain_limit == 15
        assert desc.fail_label == "FAIL (16-key limit)"

    def test_evicting_schemes_have_no_limit(self):
        desc = CostDescriptor(check="pkru", key_space=16, collapse="evict",
                              broadcast_shootdown=True,
                              invalidates_tlb=True)
        assert desc.hard_domain_limit is None

    def test_hard_domain_limits_by_name(self):
        assert hard_domain_limit("mpk") == 15  # key 0 ceded to the kernel
        assert hard_domain_limit("erim") == 16
        for name in ("lowerbound", "mpk_virt", "domain_virt", "libmpk",
                     "pks_seal", "dpti", "poe2"):
            assert hard_domain_limit(name) is None, name

    def test_supports_domain_count(self):
        assert supports_domain_count("erim", 16)
        assert not supports_domain_count("erim", 17)
        assert supports_domain_count("mpk", 15)
        assert not supports_domain_count("mpk", 16)
        assert supports_domain_count("dpti", 4096)
        assert supports_domain_count("pks", 4096)  # aliases resolve

    def test_fail_labels_match_the_pinned_report_string(self):
        # Both hard-limited schemes have a 16-slot key space, so the
        # historical report string stays byte-identical.
        assert scheme_descriptor("mpk").fail_label == "FAIL (16-key limit)"
        assert scheme_descriptor("erim").fail_label == \
            "FAIL (16-key limit)"


class TestSchemeDeclarations:
    def test_every_registered_scheme_declares_a_descriptor(self):
        for tag in ("multi_pmo", "single_pmo"):
            for name in schemes_tagged(tag):
                desc = scheme_by_name(name).cost
                assert isinstance(desc, CostDescriptor), name

    def test_switch_kinds(self):
        assert scheme_descriptor("mpk").switch == "wrpkru"
        assert scheme_descriptor("erim").switch == "wrpkru"
        assert scheme_descriptor("domain_virt").switch == "wrpkru"
        assert scheme_descriptor("mpk_virt").switch == "wrpkru_virt"
        assert scheme_descriptor("libmpk").switch == "wrpkru_virt"
        assert scheme_descriptor("pks_seal").switch == "wrpkru_virt"
        assert scheme_descriptor("dpti").switch == "cr3"
        assert scheme_descriptor("poe2").switch == "overlay"

    def test_broadcasters_are_the_virtualizing_key_schemes(self):
        broadcasting = {name for name in ALL_SCHEMES
                        if scheme_descriptor(name).broadcast_shootdown}
        assert broadcasting == {"mpk_virt", "libmpk", "pks_seal", "poe2"}

    def test_poe2_widens_the_key_space(self):
        assert scheme_descriptor("poe2").key_space == 64
        assert scheme_descriptor("mpk_virt").key_space == 16

    def test_dpti_has_no_keys_at_all(self):
        desc = scheme_descriptor("dpti")
        assert desc.key_space is None
        assert desc.collapse == "none"
        assert not desc.broadcast_shootdown


class TestKernelSelection:
    """descriptor -> fused kernel family (repro.cpu.fast_timing)."""

    def _kernel(self, name):
        return kernel_for(DEFAULT_CONFIG, scheme_by_name(name))

    def test_page_check_maps_to_codes(self):
        assert self._kernel("lowerbound") == "codes"

    def test_ptlb_check_maps_to_dv(self):
        assert self._kernel("domain_virt") == "dv"

    def test_pkru_check_maps_to_mpk(self):
        for name in ("mpk", "mpk_virt", "erim", "pks_seal", "poe2"):
            assert self._kernel(name) == "mpk", name

    def test_swtable_check_maps_to_swtable(self):
        for name in ("libmpk", "dpti"):
            assert self._kernel(name) == "swtable", name

    def test_all_registered_schemes_replay_fast(self):
        for name in ALL_SCHEMES:
            assert supports_fast_replay(DEFAULT_CONFIG,
                                        scheme_by_name(name)), name

    def test_descriptorless_scheme_has_no_kernel(self):
        class Undeclared(ProtectionScheme):
            name = "undeclared_test_scheme"
            cost = None

        assert kernel_for(DEFAULT_CONFIG, Undeclared) is None
        assert not supports_fast_replay(DEFAULT_CONFIG, Undeclared)
