"""Shared harness for driving protection schemes directly in tests."""

from __future__ import annotations

import pytest

from repro.permissions import Perm
from repro.core.schemes import scheme_by_name
from repro.mem.tlb import TLBEntry, TwoLevelTLB
from repro.os.kernel import Kernel
from repro.sim.config import DEFAULT_CONFIG
from repro.sim.stats import RunStats


class SchemeHarness:
    """Drives one scheme the way the replay engine would, without traces."""

    def __init__(self, name: str, config=None):
        self.config = config or DEFAULT_CONFIG
        self.kernel = Kernel()
        self.process = self.kernel.create_process()
        tlb_cfg = self.config.tlb
        self.tlb = TwoLevelTLB(
            l1_entries=tlb_cfg.l1_entries, l1_ways=tlb_cfg.l1_ways,
            l2_entries=tlb_cfg.l2_entries, l2_ways=tlb_cfg.l2_ways)
        self.stats = RunStats()
        self.scheme = scheme_by_name(name)(
            self.config, self.process, self.tlb, self.stats)
        self._pools = 0

    @property
    def tid(self) -> int:
        return self.process.main_thread.tid

    def spawn_thread(self) -> int:
        return self.process.spawn_thread().tid

    def add_pmo(self, size: int = 8 << 20, *, intent: Perm = Perm.RW,
                initial: Perm = None, name: str = None) -> int:
        """Create + attach a PMO; returns its domain ID."""
        self._pools += 1
        name = name or f"pmo-{self._pools}"
        self.kernel.pools.pool_create(name, size, (Perm.RW, Perm.NONE))
        attachment = self.kernel.attach(self.process, name, intent)
        self.scheme.attach_domain(attachment.vma, intent)
        if initial is not None:
            for thread in self.process.threads:
                self.scheme.set_initial_perm(
                    attachment.pmo_id, thread.tid, initial)
        return attachment.pmo_id

    def vma(self, domain: int):
        return self.process.attachment(domain).vma

    def setperm(self, domain: int, perm: Perm, *, tid: int = None) -> None:
        self.scheme.perm_switch(
            tid if tid is not None else self.tid, domain, perm)

    def access(self, domain: int, *, offset: int = 4096,
               is_write: bool = False, tid: int = None) -> bool:
        """One load/store at ``offset`` into the PMO, with TLB modelling."""
        tid = tid if tid is not None else self.tid
        vma = self.vma(domain)
        vaddr = vma.base + offset
        vpn = vaddr >> 12
        entry, _level = self.tlb.lookup(vpn)
        if entry is None:
            pte = self.kernel.ensure_mapped(self.process, vaddr)
            pkey, tag_domain = self.scheme.fill_tags(vma, tid)
            entry = TLBEntry(vpn=vpn, pfn=pte.pfn, perm=pte.perm,
                             pkey=pkey, domain=tag_domain)
            self.tlb.fill(entry)
        return self.scheme.check_access(tid, entry, is_write)

    def context_switch(self, old_tid: int, new_tid: int) -> None:
        self.scheme.context_switch(old_tid, new_tid)


@pytest.fixture
def harness():
    return SchemeHarness
