"""Tests for hardware domain virtualization (DRT + PT + PTLB)."""

import pytest

from repro.permissions import Perm


@pytest.fixture
def h(harness):
    return harness("domain_virt")


class TestNoShootdowns:
    def test_many_domains_no_tlb_invalidations(self, h):
        """The design's headline property: no TLB shootdowns, ever."""
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(64)]
        for domain in domains:
            h.access(domain)
        assert h.stats.evictions == 0
        assert h.stats.tlb_entries_invalidated == 0
        assert h.stats.buckets["tlb_invalidations"] == 0

    def test_tlb_entries_survive_domain_churn(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(64)]
        for domain in domains:
            h.access(domain)
        misses_before = h.tlb.misses
        for domain in domains[:8]:
            h.access(domain)  # translations are still cached
        assert h.tlb.misses == misses_before


class TestPTLBAccounting:
    def test_hit_costs_one_cycle_in_access_latency(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)  # first access: PTLB miss
        before = h.stats.buckets["access_latency"]
        h.access(domain)
        assert h.stats.buckets["access_latency"] == before + 1

    def test_miss_costs_thirty_cycles(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        assert h.stats.buckets["ptlb_misses"] == 30
        assert h.stats.ptlb_misses_count == 1

    def test_seventeen_domains_thrash_ptlb(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(17)]
        for _ in range(3):
            for domain in domains:
                h.access(domain)
        # Round-robin over 17 domains with 16 entries: every access a miss.
        assert h.stats.ptlb_misses_count > 17

    def test_domainless_access_skips_ptlb(self, h):
        from repro.mem.tlb import TLBEntry
        vma = h.kernel.map_volatile(h.process, 1 << 16)
        pte = h.kernel.ensure_mapped(h.process, vma.base)
        entry = TLBEntry(vpn=vma.base >> 12, pfn=pte.pfn, perm=pte.perm)
        before = h.stats.cycles
        assert h.scheme.check_access(h.tid, entry, False)
        assert h.stats.cycles == before


class TestSetperm:
    def test_setperm_completes_in_ptlb(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)  # PTLB now caches the domain
        before = h.stats.ptlb_misses_count
        h.setperm(domain, Perm.RW)
        assert h.stats.ptlb_misses_count == before  # no PT lookup needed
        cached = h.scheme.ptlb.peek(domain)
        assert cached.dirty and cached.perm == Perm.RW

    def test_dirty_entry_written_back_on_eviction(self, h):
        target = h.add_pmo(initial=Perm.R)
        h.setperm(target, Perm.RW)  # dirty PTLB entry, PT still says R
        assert h.scheme.pt.get(target, h.tid) == Perm.R
        # Thrash the PTLB until the dirty entry is evicted.
        others = [h.add_pmo(size=1 << 20, initial=Perm.R)
                  for _ in range(20)]
        for domain in others:
            h.access(domain)
        assert h.scheme.pt.get(target, h.tid) == Perm.RW


class TestContextSwitch:
    def test_ptlb_flushed_but_tlb_kept(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        tlb_misses_before = h.tlb.misses
        h.context_switch(h.tid, h.tid)
        assert len(h.scheme.ptlb) == 0
        h.access(domain)
        # Translation still cached: no new TLB miss after the switch.
        assert h.tlb.misses == tlb_misses_before

    def test_dirty_permissions_written_back_on_switch(self, h):
        t2 = h.spawn_thread()
        domain = h.add_pmo(initial=Perm.NONE)
        h.setperm(domain, Perm.RW)
        h.context_switch(h.tid, t2)
        assert h.scheme.pt.get(domain, h.tid) == Perm.RW

    def test_threads_see_their_own_pt_rows(self, h):
        t2 = h.spawn_thread()
        domain = h.add_pmo(initial=Perm.NONE)
        h.setperm(domain, Perm.RW)
        h.context_switch(h.tid, t2)
        assert not h.access(domain, tid=t2)
        h.context_switch(t2, h.tid)
        assert h.access(domain, is_write=True)


class TestDetach:
    def test_detach_clears_all_state(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        h.scheme.detach_domain(domain)
        assert domain not in h.scheme.drt
        assert domain not in h.scheme.pt
        assert domain not in h.scheme.ptlb
