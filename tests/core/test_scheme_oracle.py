"""Property test: every enforcing scheme agrees with a reference oracle.

The oracle is the paper's specification itself: an access is legal iff
the page permission AND the thread's current domain permission both allow
it (Section IV-A).  Random sequences of SETPERMs, accesses and context
switches are driven through MPK-virt, domain-virt and libmpk side by
side; any divergence from the oracle (or between schemes) is a bug in
that scheme's state machine — exactly the class of bug the DTTLB/PTLB
writeback and shootdown logic could introduce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.permissions import Perm, strictest

from .conftest import SchemeHarness

N_DOMAINS = 20  # > 16 keys: forces evictions/remaps mid-sequence
SCHEMES = ("mpk_virt", "domain_virt", "libmpk", "pks_seal", "dpti",
           "poe2")
#: erim hard-faults past 16 domains (its wall, by design), so it gets
#: its own in-budget oracle run below instead of joining SCHEMES.
N_DOMAINS_ERIM = 12

op_strategy = st.lists(st.one_of(
    st.tuples(st.just("setperm"), st.integers(0, N_DOMAINS - 1),
              st.sampled_from([Perm.NONE, Perm.R, Perm.RW]),
              st.integers(0, 1)),
    st.tuples(st.just("access"), st.integers(0, N_DOMAINS - 1),
              st.booleans(), st.integers(0, 1)),
    st.tuples(st.just("ctxsw"), st.integers(0, 1), st.just(None),
              st.just(None)),
), min_size=1, max_size=60)


class Oracle:
    """The specification: per-(thread, domain) permission, page perm RW."""

    def __init__(self):
        self.perms = {}

    def setperm(self, tid, domain, perm):
        self.perms[(tid, domain)] = perm

    def allowed(self, tid, domain, is_write):
        domain_perm = self.perms.get((tid, domain), Perm.NONE)
        return strictest(Perm.RW, domain_perm).allows(is_write=is_write)


def drive(scheme_name, harness_cls, ops, n_domains=N_DOMAINS):
    """Run one op sequence; returns the access-decision list."""
    h = harness_cls(scheme_name)
    tids = [h.tid, h.spawn_thread()]
    domains = [h.add_pmo(size=1 << 20, initial=Perm.NONE)
               for _ in range(n_domains)]
    current = 0
    decisions = []
    for op in ops:
        if op[0] == "setperm":
            _, dom_index, perm, thread_index = op
            if thread_index != current:
                continue  # only the running thread executes SETPERM
            h.setperm(domains[dom_index], perm, tid=tids[thread_index])
        elif op[0] == "access":
            _, dom_index, is_write, thread_index = op
            if thread_index != current:
                continue
            decisions.append(h.access(domains[dom_index],
                                      is_write=is_write,
                                      tid=tids[thread_index]))
        else:
            _, new, _, _ = op
            if new != current:
                h.context_switch(tids[current], tids[new])
                current = new
    return decisions


def oracle_decisions(ops):
    oracle = Oracle()
    current = 0
    decisions = []
    for op in ops:
        if op[0] == "setperm":
            _, dom, perm, thread_index = op
            if thread_index == current:
                oracle.setperm(thread_index, dom, perm)
        elif op[0] == "access":
            _, dom, is_write, thread_index = op
            if thread_index == current:
                decisions.append(oracle.allowed(thread_index, dom,
                                                is_write))
        else:
            current = op[1]
    return decisions


class TestSchemesMatchOracle:
    @settings(max_examples=40, deadline=None)
    @given(ops=op_strategy)
    def test_all_schemes_agree_with_specification(self, ops):
        expected = oracle_decisions(ops)
        for scheme in SCHEMES:
            got = drive(scheme, SchemeHarness, ops)
            assert got == expected, (
                f"{scheme} diverged from the specification")

    @settings(max_examples=40, deadline=None)
    @given(ops=op_strategy)
    def test_erim_agrees_within_its_key_budget(self, ops):
        clamped = [(op[0], op[1] % N_DOMAINS_ERIM, op[2], op[3])
                   if op[0] in ("setperm", "access") else op
                   for op in ops]
        expected = oracle_decisions(clamped)
        got = drive("erim", SchemeHarness, clamped,
                    n_domains=N_DOMAINS_ERIM)
        assert got == expected, "erim diverged from the specification"
