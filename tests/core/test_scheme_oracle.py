"""Property test: every enforcing scheme agrees with a reference oracle.

The oracle is the paper's specification itself: an access is legal iff
the page permission AND the thread's current domain permission both allow
it (Section IV-A).  Random sequences of SETPERMs, accesses and context
switches are driven through MPK-virt, domain-virt and libmpk side by
side; any divergence from the oracle (or between schemes) is a bug in
that scheme's state machine — exactly the class of bug the DTTLB/PTLB
writeback and shootdown logic could introduce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.permissions import Perm, strictest

from .conftest import SchemeHarness

N_DOMAINS = 20  # > 16 keys: forces evictions/remaps mid-sequence
SCHEMES = ("mpk_virt", "domain_virt", "libmpk")

op_strategy = st.lists(st.one_of(
    st.tuples(st.just("setperm"), st.integers(0, N_DOMAINS - 1),
              st.sampled_from([Perm.NONE, Perm.R, Perm.RW]),
              st.integers(0, 1)),
    st.tuples(st.just("access"), st.integers(0, N_DOMAINS - 1),
              st.booleans(), st.integers(0, 1)),
    st.tuples(st.just("ctxsw"), st.integers(0, 1), st.just(None),
              st.just(None)),
), min_size=1, max_size=60)


class Oracle:
    """The specification: per-(thread, domain) permission, page perm RW."""

    def __init__(self):
        self.perms = {}

    def setperm(self, tid, domain, perm):
        self.perms[(tid, domain)] = perm

    def allowed(self, tid, domain, is_write):
        domain_perm = self.perms.get((tid, domain), Perm.NONE)
        return strictest(Perm.RW, domain_perm).allows(is_write=is_write)


def drive(scheme_name, harness_cls, ops):
    """Run one op sequence; returns the access-decision list."""
    h = harness_cls(scheme_name)
    tids = [h.tid, h.spawn_thread()]
    domains = [h.add_pmo(size=1 << 20, initial=Perm.NONE)
               for _ in range(N_DOMAINS)]
    current = 0
    decisions = []
    for op in ops:
        if op[0] == "setperm":
            _, dom_index, perm, thread_index = op
            if thread_index != current:
                continue  # only the running thread executes SETPERM
            h.setperm(domains[dom_index], perm, tid=tids[thread_index])
        elif op[0] == "access":
            _, dom_index, is_write, thread_index = op
            if thread_index != current:
                continue
            decisions.append(h.access(domains[dom_index],
                                      is_write=is_write,
                                      tid=tids[thread_index]))
        else:
            _, new, _, _ = op
            if new != current:
                h.context_switch(tids[current], tids[new])
                current = new
    return decisions


def oracle_decisions(ops):
    oracle = Oracle()
    current = 0
    decisions = []
    for op in ops:
        if op[0] == "setperm":
            _, dom, perm, thread_index = op
            if thread_index == current:
                oracle.setperm(thread_index, dom, perm)
        elif op[0] == "access":
            _, dom, is_write, thread_index = op
            if thread_index == current:
                decisions.append(oracle.allowed(thread_index, dom,
                                                is_write))
        else:
            current = op[1]
    return decisions


class TestSchemesMatchOracle:
    @settings(max_examples=40, deadline=None)
    @given(ops=op_strategy)
    def test_all_schemes_agree_with_specification(self, ops):
        expected = oracle_decisions(ops)
        for scheme in SCHEMES:
            got = drive(scheme, SchemeHarness, ops)
            assert got == expected, (
                f"{scheme} diverged from the specification")
