"""Tests for hardware MPK virtualization (DTT + DTTLB + key remapping)."""

import pytest

from repro.permissions import Perm


@pytest.fixture
def h(harness):
    return harness("mpk_virt")


class TestUnlimitedDomains:
    def test_far_more_than_16_domains_attach(self, h):
        for _ in range(40):
            h.add_pmo(size=1 << 20, initial=Perm.R)
        assert len(h.scheme.dtt) == 40

    def test_all_domains_accessible_with_permission(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(40)]
        assert all(h.access(d) for d in domains)


class TestKeyAssignment:
    def test_first_16_domains_use_free_keys_without_eviction(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(16)]
        for domain in domains:
            h.access(domain)
        assert h.stats.evictions == 0
        assert not h.scheme.free_keys

    def test_17th_active_domain_evicts(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(17)]
        for domain in domains:
            h.access(domain)
        assert h.stats.evictions == 1

    def test_eviction_invalidates_victim_tlb_entries(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(17)]
        for domain in domains[:16]:
            h.access(domain)
        victim_counted_before = h.stats.tlb_entries_invalidated
        h.access(domains[16])
        assert h.stats.tlb_entries_invalidated > victim_counted_before

    def test_shootdown_cost_scales_with_threads(self, harness):
        single = harness("mpk_virt")
        domains = [single.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(17)]
        for domain in domains:
            single.access(domain)
        single_cost = single.stats.buckets["tlb_invalidations"]

        multi = harness("mpk_virt")
        multi.spawn_thread()
        multi.spawn_thread()
        domains = [multi.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(17)]
        for domain in domains:
            multi.access(domain)
        assert multi.stats.buckets["tlb_invalidations"] == 3 * single_cost

    def test_victim_revival_reassigns_a_key(self, h):
        domains = [h.add_pmo(size=1 << 20, initial=Perm.R)
                   for _ in range(17)]
        for domain in domains:
            h.access(domain)
        # The first victim must be accessible again (new key assigned).
        evicted = next(d for d in domains
                       if h.scheme.dtt.by_domain(d).key == 0)
        assert h.access(evicted)
        assert h.scheme.dtt.by_domain(evicted).key != 0


class TestSetpermSemantics:
    def test_setperm_does_not_assign_keys(self, h):
        """Section IV-D: key assignment happens on the TLB-miss path, so
        a SETPERM sweep over many unmapped domains causes no shootdowns."""
        domains = [h.add_pmo(size=1 << 20) for _ in range(32)]
        for domain in domains:
            h.setperm(domain, Perm.RW)
        assert h.stats.evictions == 0

    def test_setperm_on_keyed_domain_updates_pkru(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)  # gives the domain a key
        h.setperm(domain, Perm.RW)
        assert h.access(domain, is_write=True)
        h.setperm(domain, Perm.R)
        assert not h.access(domain, is_write=True)

    def test_single_pmo_costs_match_default_mpk(self, harness):
        """Table V: with one PMO, MPK virtualization == default MPK."""
        mpk = harness("mpk")
        virt = harness("mpk_virt")
        for h in (mpk, virt):
            domain = h.add_pmo(initial=Perm.NONE)
            h.access(domain, offset=8192) if False else None
            for _ in range(50):
                h.setperm(domain, Perm.RW)
                h.access(domain, is_write=True)
                h.setperm(domain, Perm.NONE)
        assert (virt.stats.buckets["perm_change"]
                == mpk.stats.buckets["perm_change"])
        assert virt.stats.buckets["tlb_invalidations"] == 0

    def test_dtt_miss_charged_on_dttlb_miss(self, h):
        domains = [h.add_pmo(size=1 << 20) for _ in range(17)]
        for domain in domains:  # 17 domains thrash the 16-entry DTTLB
            h.setperm(domain, Perm.R)
        h.setperm(domains[0], Perm.RW)
        assert h.stats.buckets["dtt_misses"] >= 30


class TestContextSwitch:
    def test_dttlb_flushed(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        assert len(h.scheme.dttlb) > 0
        h.context_switch(h.tid, h.tid)
        assert len(h.scheme.dttlb) == 0

    def test_dirty_key_mapping_written_back(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        key_before = h.scheme.dtt.by_domain(domain).key
        h.context_switch(h.tid, h.tid)
        assert h.scheme.dtt.by_domain(domain).key == key_before

    def test_pkru_reconstructed_for_incoming_thread(self, h):
        t2 = h.spawn_thread()
        domain = h.add_pmo(initial=Perm.NONE)
        h.scheme.set_initial_perm(domain, t2, Perm.R)
        h.setperm(domain, Perm.RW)
        h.access(domain)  # key assigned under thread 1
        h.context_switch(h.tid, t2)
        assert h.access(domain, tid=t2)                 # R from the DTT
        assert not h.access(domain, tid=t2, is_write=True)


class TestDetach:
    def test_detach_releases_key(self, h):
        domain = h.add_pmo(initial=Perm.R)
        h.access(domain)
        free_before = len(h.scheme.free_keys)
        h.scheme.detach_domain(domain)
        assert len(h.scheme.free_keys) == free_before + 1
