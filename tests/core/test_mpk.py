"""Tests for default MPK: the 16-key limit and WRPKRU accounting."""

import pytest

from repro.errors import PkeyError
from repro.permissions import Perm


@pytest.fixture
def h(harness):
    return harness("mpk")


class TestKeyLimit:
    def test_fifteen_domains_fit(self, h):
        for _ in range(15):
            h.add_pmo(size=1 << 20)
        assert h.process.free_pkey_count == 0

    def test_sixteenth_domain_fails(self, h):
        """The scalability wall of Section I: pkey_alloc errors out."""
        for _ in range(15):
            h.add_pmo(size=1 << 20)
        with pytest.raises(PkeyError):
            h.add_pmo(size=1 << 20)

    def test_detach_frees_the_key(self, h):
        domains = [h.add_pmo(size=1 << 20) for _ in range(15)]
        h.scheme.detach_domain(domains[0])
        h.kernel.detach(h.process, domains[0])
        assert h.process.free_pkey_count == 1
        h.add_pmo(size=1 << 20)  # the freed key is reusable


class TestAccounting:
    def test_wrpkru_cost_charged(self, h):
        domain = h.add_pmo()
        h.setperm(domain, Perm.RW)
        h.setperm(domain, Perm.NONE)
        assert h.stats.buckets["perm_change"] == 2 * 27

    def test_access_check_is_free(self, h):
        domain = h.add_pmo(initial=Perm.RW)
        before = h.stats.cycles
        assert h.access(domain)
        assert h.stats.cycles == before

    def test_no_evictions_ever(self, h):
        domain = h.add_pmo(initial=Perm.RW)
        for offset in range(4096, 40960, 4096):
            h.access(domain, offset=offset)
        assert h.stats.evictions == 0


class TestPKRUSemantics:
    def test_pkey_written_into_vma_and_ptes(self, h):
        domain = h.add_pmo(initial=Perm.RW)
        vma = h.vma(domain)
        assert vma.pkey != 0
        h.access(domain)  # faults the page in with the VMA's key
        from repro.mem.page_table import vpn_of
        pte = h.process.page_table.get(vpn_of(vma.base + 4096))
        assert pte.pkey == vma.pkey

    def test_distinct_domains_distinct_keys(self, h):
        a = h.add_pmo()
        b = h.add_pmo()
        assert h.vma(a).pkey != h.vma(b).pkey

    def test_default_key_zero_allows_everything(self, h):
        from repro.core.mpk import PKRU
        pkru = PKRU()
        assert pkru.get(tid=1, key=0) == Perm.RW

    def test_nonzero_keys_default_inaccessible(self, h):
        from repro.core.mpk import PKRU
        pkru = PKRU()
        for key in range(1, 16):
            assert pkru.get(tid=1, key=key) == Perm.NONE
