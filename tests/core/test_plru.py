"""Tests for the tree pseudo-LRU and exact-LRU policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plru import PseudoLRU, TrueLRU


class TestPseudoLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PseudoLRU(12)
        with pytest.raises(ValueError):
            PseudoLRU(1)

    def test_victim_never_most_recent(self):
        plru = PseudoLRU(8)
        for slot in range(8):
            plru.touch(slot)
            assert plru.victim() != slot

    def test_untouched_tree_has_a_victim(self):
        assert 0 <= PseudoLRU(16).victim() < 16

    def test_round_robin_touch_cycles_victims(self):
        plru = PseudoLRU(4)
        seen = set()
        for i in range(16):
            victim = plru.victim()
            seen.add(victim)
            plru.touch(victim)
        assert seen == {0, 1, 2, 3}

    def test_touch_out_of_range(self):
        with pytest.raises(IndexError):
            PseudoLRU(4).touch(4)

    def test_reset(self):
        plru = PseudoLRU(4)
        plru.touch(3)
        plru.reset()
        assert plru.victim() == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=64))
    def test_victim_is_not_among_recent_half(self, touches):
        """Tree PLRU guarantee: the victim was not touched more recently
        than every slot on the victim's root path — in particular the
        victim is never the single most recently touched slot."""
        plru = PseudoLRU(16)
        for slot in touches:
            plru.touch(slot)
        assert plru.victim() != touches[-1]


class TestTrueLRU:
    def test_victim_is_least_recent(self):
        lru = TrueLRU(4)
        for slot in (0, 1, 2, 3, 0, 1):
            lru.touch(slot)
        assert lru.victim() == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TrueLRU(0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=8, max_size=64))
    def test_matches_reference_model(self, touches):
        lru = TrueLRU(8)
        order = list(range(8))
        for slot in touches:
            lru.touch(slot)
            order.remove(slot)
            order.append(slot)
        assert lru.victim() == order[0]
