"""Tests for the key-grouping security-weakening analysis (Section IV-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.permissions import Perm
from repro.core.grouping import (exposure_report, greedy_grouping,
                                 minimum_weakening, weakening)


class TestWeakening:
    def test_paper_example_r_and_rw_share_a_key(self):
        """Section IV-B: R1(A) and RW1(B) sharing key X forces RW1(X),
        so thread 1 can write A — one escalation step."""
        intents = {0: {1: Perm.R}, 1: {1: Perm.RW}}
        assert weakening([[0, 1]], intents) == 1  # R -> RW on A

    def test_paper_example_incompatible_threads(self):
        """RW1(B), RW1(C), RW2(B), None2(C): sharing B,C is free for
        thread 1 but gives thread 2 RW on C (two escalation steps)."""
        intents = {0: {1: Perm.RW, 2: Perm.RW},   # B
                   1: {1: Perm.RW, 2: Perm.NONE}}  # C
        assert weakening([[0, 1]], intents) == 2

    def test_singleton_groups_never_weaken(self):
        intents = {d: {1: Perm.R, 2: Perm.RW} for d in range(5)}
        assert weakening([[d] for d in intents], intents) == 0

    def test_identical_domains_merge_for_free(self):
        intents = {d: {1: Perm.R} for d in range(4)}
        assert weakening([list(intents)], intents) == 0


class TestGreedyGrouping:
    def test_respects_key_budget(self):
        intents = {d: {1: Perm(d % 3)} for d in range(12)}
        grouping = greedy_grouping(intents, n_keys=4)
        assert len(grouping) <= 4
        assert sorted(d for g in grouping for d in g) == sorted(intents)

    def test_enough_keys_means_no_weakening(self):
        intents = {d: {1: Perm(d % 3)} for d in range(6)}
        grouping = greedy_grouping(intents, n_keys=6)
        assert weakening(grouping, intents) == 0

    def test_groups_compatible_domains_first(self):
        # Two clusters of identical intents: greedy should merge within
        # clusters and achieve zero weakening with two keys.
        intents = {0: {1: Perm.R}, 1: {1: Perm.R},
                   2: {1: Perm.RW}, 3: {1: Perm.RW}}
        grouping = greedy_grouping(intents, n_keys=2)
        assert weakening(grouping, intents) == 0

    def test_bad_key_budget_rejected(self):
        with pytest.raises(ValueError):
            greedy_grouping({0: {1: Perm.R}}, n_keys=0)


class TestThePapersArgument:
    def test_even_optimal_grouping_weakens_security(self):
        """The point of Section IV-B: with conflicting per-thread intents
        and fewer keys than domains, *every* grouping — including the
        exhaustive optimum — escalates someone's permission."""
        intents = {
            0: {1: Perm.RW, 2: Perm.NONE},
            1: {1: Perm.NONE, 2: Perm.RW},
            2: {1: Perm.R, 2: Perm.R},
        }
        assert minimum_weakening(intents, n_keys=2) > 0

    def test_greedy_matches_optimum_on_small_instances(self):
        intents = {
            0: {1: Perm.RW}, 1: {1: Perm.R}, 2: {1: Perm.NONE},
            3: {1: Perm.RW}, 4: {1: Perm.R},
        }
        greedy = weakening(greedy_grouping(intents, n_keys=3), intents)
        assert greedy == minimum_weakening(intents, n_keys=3)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from([0, 1, 2]),
                              st.sampled_from([0, 1, 2])),
                    min_size=4, max_size=7))
    def test_greedy_never_beats_exhaustive(self, perms):
        intents = {d: {1: Perm(a), 2: Perm(b)}
                   for d, (a, b) in enumerate(perms)}
        n_keys = 2
        greedy = weakening(greedy_grouping(intents, n_keys), intents)
        optimum = minimum_weakening(intents, n_keys)
        assert greedy >= optimum

    def test_exhaustive_guard(self):
        intents = {d: {1: Perm.R} for d in range(11)}
        with pytest.raises(ValueError):
            minimum_weakening(intents, 2)


class TestExposureReport:
    def test_lists_each_escalation(self):
        intents = {0: {1: Perm.R}, 1: {1: Perm.RW}}
        report = exposure_report([[0, 1]], intents)
        assert "thread 1 gains RW on domain 0" in report

    def test_clean_grouping(self):
        intents = {0: {1: Perm.R}, 1: {1: Perm.R}}
        assert exposure_report([[0], [1]], intents) == \
            "no security weakening"
