"""Tests for the ERIM-style trace inspector."""

import pytest

from repro.permissions import Perm
from repro.core.inspector import TraceInspector, Violation, assert_clean
from repro.cpu.trace import TraceRecorder
from repro.os.address_space import VMA
from repro.workloads.base import PerAccessPolicy, PerOpPolicy, Workspace
from repro.workloads.micro import MicroParams, generate_micro_trace


def vma(domain):
    return VMA(base=0x2000_0000_0000 + domain * (1 << 30),
               reserved=1 << 30, size=8 << 20, pmo_id=domain,
               granule=1 << 30, is_nvm=True)


def recorder_with_domains(*domains, baseline=Perm.R):
    rec = TraceRecorder()
    for domain in domains:
        rec.attach(domain, vma(domain), Perm.RW)
        rec.init_perm(1, domain, baseline)
    return rec


class TestCleanTraces:
    def test_balanced_window_is_clean(self):
        rec = recorder_with_domains(1)
        rec.perm(1, 1, Perm.RW)
        rec.store(1, vma(1).base)
        rec.perm(1, 1, Perm.R)
        report = TraceInspector().inspect(rec.finish())
        assert report.clean
        assert report.switches_seen == 2
        assert report.max_open_observed == 1

    def test_micro_suite_instrumentation_is_clean(self):
        trace, _ = generate_micro_trace(MicroParams(
            benchmark="rbt", n_pools=8, initial_nodes=16, operations=40))
        assert_clean(trace, max_open_domains=8)

    def test_whisper_per_access_instrumentation_is_clean(self):
        ws = Workspace(PerAccessPolicy())
        pool = ws.create_and_attach("p", 1 << 20)
        oid = pool.pool.pmalloc(64)
        for _ in range(5):
            ws.mem.write_u64(oid, 0, 1)
        assert_clean(ws.finish())


class TestViolations:
    def test_unbalanced_grant_detected(self):
        rec = recorder_with_domains(1)
        rec.perm(1, 1, Perm.RW)
        rec.store(1, vma(1).base)
        report = TraceInspector().inspect(rec.finish())
        assert report.by_kind() == {"unbalanced-grant": 1}

    def test_too_many_open_domains(self):
        rec = recorder_with_domains(1, 2, 3)
        for domain in (1, 2, 3):
            rec.perm(1, domain, Perm.RW)
        for domain in (1, 2, 3):
            rec.perm(1, domain, Perm.R)
        report = TraceInspector(max_open_domains=2).inspect(rec.finish())
        assert report.by_kind()["window-width"] == 1
        assert report.max_open_observed == 3

    def test_pairwise_rule_allows_two(self):
        """The paper's rule: at most two PMOs enabled at any time."""
        rec = recorder_with_domains(1, 2)
        rec.perm(1, 1, Perm.RW)
        rec.perm(1, 2, Perm.RW)
        rec.perm(1, 2, Perm.R)
        rec.perm(1, 1, Perm.R)
        assert TraceInspector(max_open_domains=2).inspect(
            rec.finish()).clean

    def test_window_length_exceeded(self):
        rec = recorder_with_domains(1)
        rec.perm(1, 1, Perm.RW)
        for i in range(6):
            rec.store(1, vma(1).base + i * 8)
        rec.perm(1, 1, Perm.R)
        report = TraceInspector(max_window_accesses=4).inspect(rec.finish())
        assert report.by_kind() == {"window-length": 1}

    def test_unattached_switch(self):
        rec = TraceRecorder()
        rec.perm(1, 99, Perm.RW)
        report = TraceInspector().inspect(rec.finish())
        assert report.by_kind() == {"unattached-switch": 1}

    def test_switch_after_detach_flagged(self):
        rec = recorder_with_domains(1)
        rec.detach(1)
        rec.perm(1, 1, Perm.RW)
        report = TraceInspector().inspect(rec.finish())
        assert "unattached-switch" in report.by_kind()

    def test_per_thread_windows_independent(self):
        rec = recorder_with_domains(1, 2, 3)
        rec.init_perm(2, 3, Perm.R)        # thread 2's baseline
        for domain in (1, 2):
            rec.perm(1, domain, Perm.RW)   # thread 1 holds two
        rec.perm(2, 3, Perm.RW)            # thread 2 holds one: fine
        rec.perm(2, 3, Perm.R)
        for domain in (1, 2):
            rec.perm(1, domain, Perm.R)
        assert TraceInspector(max_open_domains=2).inspect(
            rec.finish()).clean


class TestHelpers:
    def test_assert_clean_raises_with_summary(self):
        rec = recorder_with_domains(1)
        rec.perm(1, 1, Perm.RW)
        with pytest.raises(AssertionError, match="unbalanced-grant"):
            assert_clean(rec.finish())

    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            TraceInspector(max_open_domains=0)

    def test_violation_str(self):
        violation = Violation("window-width", 3, 1, 9, "too many")
        assert "window-width" in str(violation)
