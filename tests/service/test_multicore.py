"""Multi-core sharded replay: the differential anchors of MULTICORE.md.

Three contracts, asserted differentially:

* **workers=1 bit-identity** — the sharded path degenerates to the
  classic single-core replay: same shard object, same marks, and
  bit-identical ``RunStats`` (cycles, counters, mark_cycles) and
  ``ServiceSummary`` for every registered scheme;
* **shard-merge cycle conservation** — per-shard busy cycles sum to the
  merged totals, and every slot's busy time equals its shard's final
  mark clock;
* **the paper's headline contrast** — at ``workers > 1`` MPKV/libmpk
  report nonzero cross-core shootdown cycles (key remaps interrupt
  every core) while domain virtualization reports exactly zero.
"""

import numpy as np
import pytest

from repro.cpu.trace import CTXSW, INIT_PERM
from repro.engine import Engine, replay_one
from repro.errors import SimulationError
from repro.service import (ServiceParams, account, account_sharded,
                           batch_boundaries, build_plan,
                           generate_service_trace, shard_by_worker,
                           worker_slots)
from repro.sim.config import DEFAULT_CONFIG
from repro.sim.stats import merge_run_stats

from repro.core.schemes import scheme_descriptor

ALL_SCHEMES = ("baseline", "lowerbound", "mpk", "mpk_virt", "libmpk",
               "domain_virt", "erim", "pks_seal", "dpti", "poe2")
#: Schemes whose key remaps broadcast shootdowns across cores —
#: *derived* from the cost descriptors, so a new scheme declaring
#: broadcast_shootdown joins these assertions automatically.
BROADCASTING = tuple(
    name for name in ALL_SCHEMES
    if name != "baseline" and scheme_descriptor(name).broadcast_shootdown)
#: Schemes with TLB churn but no cross-core broadcasts (dpti drops its
#: own translations; dv never invalidates at all).
NON_BROADCASTING = ("domain_virt", "dpti")
FREQ = DEFAULT_CONFIG.processor.frequency_hz

#: Small enough to replay every scheme, large enough that 24 client
#: domains overflow the 16 hardware keys and force remaps under Zipf
#: churn (plain mpk is excluded — it faults past 16 domains).
PARAMS_1W = ServiceParams(n_clients=8, n_requests=150)
PARAMS_4W = ServiceParams(n_clients=24, n_requests=200, workers=4)


@pytest.fixture(scope="module")
def single():
    trace, _ws = generate_service_trace(PARAMS_1W)
    return build_plan(PARAMS_1W), trace


@pytest.fixture(scope="module")
def sharded():
    trace, _ws = generate_service_trace(PARAMS_4W)
    return build_plan(PARAMS_4W), trace, shard_by_worker(trace)


class TestShardSplit:
    def test_single_worker_split_is_the_trace_itself(self, single):
        _plan, trace = single
        shards = shard_by_worker(trace)
        assert len(shards) == 1
        assert shards[0].trace is trace
        assert shards[0].marks == batch_boundaries(trace)

    def test_one_shard_per_slot_in_slot_order(self, sharded):
        _plan, trace, shards = sharded
        assert [shard.slot for shard in shards] == [0, 1, 2, 3]

    def test_shards_partition_the_measured_events(self, sharded):
        plan, trace, shards = sharded
        # Every planned batch's marks land on exactly one shard.
        assert sum(len(shard.marks) for shard in shards) == \
            len(plan.batches)
        # Measured events partition; setup events replicate.
        kinds = trace.columns.kinds
        n_ctxsw = int(np.count_nonzero(kinds == CTXSW))
        n_setup = int(np.count_nonzero((kinds == INIT_PERM) |
                                       (kinds >= 5) & (kinds != 7)))
        total = sum(len(shard.trace) for shard in shards)
        assert total == len(trace) - n_ctxsw + (len(shards) - 1) * n_setup

    def test_no_context_switches_in_any_shard(self, sharded):
        _plan, _trace, shards = sharded
        for shard in shards:
            assert not np.any(shard.trace.columns.kinds == CTXSW)

    def test_every_shard_keeps_the_full_roster(self, sharded):
        _plan, trace, shards = sharded
        for shard in shards:
            assert worker_slots(shard.trace) == worker_slots(trace)

    def test_marks_reindex_to_the_shards_own_close_events(self, sharded):
        _plan, _trace, shards = sharded
        for shard in shards:
            boundaries = batch_boundaries(shard.trace)
            assert shard.marks == boundaries

    def test_split_is_memoized(self, sharded):
        _plan, trace, shards = sharded
        assert shard_by_worker(trace) is shards


class TestWorkersOneBitIdentity:
    """The differential anchor: sharded == classic at one worker."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_runstats_bit_identical(self, single, scheme):
        _plan, trace = single
        marks = batch_boundaries(trace)
        classic = replay_one(trace, scheme, marks=marks)
        shard = shard_by_worker(trace)[0]
        via_shards = replay_one(shard.trace, scheme, marks=shard.marks,
                                n_cores=1)
        assert via_shards.to_dict() == classic.to_dict()
        assert via_shards.mark_cycles == classic.mark_cycles
        assert via_shards.cross_core_shootdowns == 0

    @pytest.mark.parametrize("scheme", ("mpk_virt", "domain_virt"))
    def test_summary_bit_identical(self, single, scheme):
        plan, trace = single
        marks = batch_boundaries(trace)
        stats = replay_one(trace, scheme, marks=marks)
        classic = account(plan, trace, stats, frequency_hz=FREQ)
        shards = shard_by_worker(trace)
        sharded = account_sharded(
            plan, shards,
            [replay_one(shards[0].trace, scheme, marks=shards[0].marks)],
            frequency_hz=FREQ)
        assert sharded.to_dict() == classic.to_dict()

    def test_engine_replay_shards_matches_replay_marked(self, single):
        plan, trace = single
        engine = Engine()
        shards = shard_by_worker(trace)
        cell = engine.replay_shards(shards, ["mpk_virt", "domain_virt"])
        for scheme in ("mpk_virt", "domain_virt"):
            classic = replay_one(trace, scheme,
                                 marks=batch_boundaries(trace))
            assert cell[scheme][0].mark_cycles == classic.mark_cycles
            assert cell[scheme][0].cycles == classic.cycles
            # baseline_cycles wired from the same shard's baseline run.
            assert cell[scheme][0].baseline_cycles == \
                cell["baseline"][0].cycles


class TestCycleConservation:
    """Sum of per-shard busy cycles equals the merged totals."""

    @pytest.fixture(scope="class")
    def replayed(self, sharded):
        plan, _trace, shards = sharded
        stats = [replay_one(shard.trace, "mpk_virt", marks=shard.marks,
                            n_cores=len(shards)) for shard in shards]
        summary = account_sharded(plan, shards, stats, frequency_hz=FREQ)
        return plan, shards, stats, summary

    def test_per_slot_busy_equals_shard_mark_clock(self, replayed):
        _plan, shards, stats, summary = replayed
        for shard, shard_stats in zip(shards, stats):
            assert summary.worker_busy[shard.slot] == pytest.approx(
                shard_stats.mark_cycles[-1], rel=1e-12)

    def test_busy_cycles_sum_to_merged_busy(self, replayed):
        _plan, _shards, stats, summary = replayed
        total_marked = sum(s.mark_cycles[-1] for s in stats)
        assert sum(summary.worker_busy.values()) == pytest.approx(
            total_marked, rel=1e-12)

    def test_merged_stats_sum_the_shards(self, replayed):
        _plan, _shards, stats, summary = replayed
        merged = summary.stats
        assert merged.cycles == pytest.approx(
            sum(s.cycles for s in stats), rel=1e-12)
        for field in ("perm_switches", "tlb_misses", "evictions",
                      "pmo_accesses", "cross_core_shootdowns"):
            assert getattr(merged, field) == \
                sum(getattr(s, field) for s in stats), field
        for bucket in merged.buckets:
            assert merged.buckets[bucket] == pytest.approx(
                sum(s.buckets[bucket] for s in stats), rel=1e-12)
        assert merged.mark_cycles is None

    def test_every_request_is_accounted(self, replayed):
        plan, _shards, _stats, summary = replayed
        assert summary.latency.count == plan.n_served
        assert summary.n_batches == len(plan.batches)
        assert set(summary.worker_busy) == \
            {batch.worker for batch in plan.batches}


class TestCrossCoreShootdowns:
    """The headline contrast: broadcasts bill MPKV/libmpk, never DV."""

    @pytest.fixture(scope="class")
    def summaries(self, sharded):
        plan, _trace, shards = sharded
        out = {}
        for scheme in BROADCASTING + NON_BROADCASTING:
            stats = [replay_one(shard.trace, scheme, marks=shard.marks,
                                n_cores=len(shards)) for shard in shards]
            out[scheme] = account_sharded(plan, shards, stats,
                                          frequency_hz=FREQ)
        return out

    def test_descriptors_pin_the_broadcast_roster(self):
        assert set(BROADCASTING) == {"mpk_virt", "libmpk", "pks_seal",
                                     "poe2"}

    @pytest.mark.parametrize(
        "scheme", [s for s in BROADCASTING if s != "poe2"])
    def test_broadcasting_schemes_pay_cross_core(self, summaries, scheme):
        # poe2's 64-overlay space does not churn at 24 clients — its
        # broadcast behavior gets a beyond-64-domain run below.
        summary = summaries[scheme]
        assert summary.cross_core_shootdowns > 0
        assert summary.cross_core_shootdown_cycles > 0

    def test_poe2_broadcasts_only_past_its_overlay_space(self, summaries):
        # Below 64 domains poe2 never remaps, so no broadcasts at all...
        assert summaries["poe2"].cross_core_shootdowns == 0
        # ...but once the overlay space overflows it pays like MPKV,
        # at its cheaper DVM rate.
        params = ServiceParams(n_clients=80, n_requests=600)
        trace, _ws = generate_service_trace(params)
        stats = replay_one(trace, "poe2", marks=batch_boundaries(trace),
                           n_cores=4)
        assert stats.cross_core_shootdowns > 0
        assert stats.cross_core_shootdown_cycles == pytest.approx(
            stats.cross_core_shootdowns *
            DEFAULT_CONFIG.poe2.tlb_invalidation_cycles * 3)

    @pytest.mark.parametrize("scheme", NON_BROADCASTING)
    def test_non_broadcasters_pay_zero(self, summaries, scheme):
        assert summaries[scheme].cross_core_shootdowns == 0
        assert summaries[scheme].cross_core_shootdown_cycles == 0.0

    @pytest.mark.parametrize("scheme", BROADCASTING)
    def test_formula_invalidation_cycles_times_remote_cores(
            self, summaries, scheme):
        # Every broadcast bills tlb_invalidation_cycles per *remote*
        # core; with 4 cores the remote share is 3 of 4.
        summary = summaries[scheme]
        section = getattr(DEFAULT_CONFIG, scheme)
        assert summary.cross_core_shootdown_cycles == pytest.approx(
            summary.cross_core_shootdowns *
            section.tlb_invalidation_cycles * 3)
        # Attribution, never an extra charge: the cross-core slice is
        # inside the tlb_invalidations bucket.
        assert summary.cross_core_shootdown_cycles <= \
            summary.stats.buckets["tlb_invalidations"]

    def test_single_core_replay_never_attributes(self, single):
        _plan, trace = single
        stats = replay_one(trace, "mpk_virt",
                           marks=batch_boundaries(trace))
        assert stats.cross_core_shootdowns == 0
        assert stats.cross_core_shootdown_cycles == 0.0


class TestMergeRunStats:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_run_stats([])

    def test_mixed_schemes_rejected(self, sharded):
        _plan, _trace, shards = sharded
        a = replay_one(shards[0].trace, "mpk_virt", marks=shards[0].marks)
        b = replay_one(shards[1].trace, "domain_virt",
                       marks=shards[1].marks)
        with pytest.raises(ValueError):
            merge_run_stats([a, b])


class TestErrors:
    def test_shard_count_mismatch_rejected(self, sharded):
        plan, _trace, shards = sharded
        stats = [replay_one(shards[0].trace, "domain_virt",
                            marks=shards[0].marks)]
        with pytest.raises(SimulationError):
            account_sharded(plan, shards, stats, frequency_hz=FREQ)

    def test_unmarked_shard_stats_rejected(self, sharded):
        plan, _trace, shards = sharded
        stats = [replay_one(shard.trace, "domain_virt")
                 for shard in shards]
        with pytest.raises(SimulationError):
            account_sharded(plan, shards, stats, frequency_hz=FREQ)


class TestCLIRefusal:
    """--workers beyond REPRO_JOBS refuses instead of serializing."""

    def test_refuses_when_pool_is_smaller(self, monkeypatch):
        from repro.experiments.service import refuse_serialized_shards
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.delenv("REPRO_SERIAL_SHARDS", raising=False)
        message = refuse_serialized_shards(4)
        assert message is not None
        assert "REPRO_JOBS" in message
        assert "REPRO_SERIAL_SHARDS" in message

    def test_accepts_when_pool_is_big_enough(self, monkeypatch):
        from repro.experiments.service import refuse_serialized_shards
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert refuse_serialized_shards(4) is None
        assert refuse_serialized_shards(1) is None

    def test_opt_in_accepts_serialized_shards(self, monkeypatch):
        from repro.experiments.service import refuse_serialized_shards
        monkeypatch.setenv("REPRO_JOBS", "1")
        monkeypatch.setenv("REPRO_SERIAL_SHARDS", "1")
        assert refuse_serialized_shards(8) is None

    def test_cli_exits_nonzero(self, monkeypatch, capsys):
        from repro.experiments import service as cli
        monkeypatch.setenv("REPRO_JOBS", "1")
        monkeypatch.delenv("REPRO_SERIAL_SHARDS", raising=False)
        code = cli.main(["--workers", "4", "--clients", "6",
                        "--requests", "40"])
        assert code == 2
        assert "REPRO_JOBS" in capsys.readouterr().err
