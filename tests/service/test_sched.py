"""The scheduling subsystem (docs/SCHEDULING.md): policy registry,
static bit-identity against the legacy dispatch loop, conservation
under rebalancing, SLO/fairness accounting, and determinism."""

import heapq
import random
from dataclasses import replace

import pytest

from repro.engine import Engine, TraceCache, WorkloadSpec, replay_one
from repro.experiments.runner import ExperimentRunner
from repro.experiments.service import main as service_main
from repro.experiments.service import summaries_for_spec
from repro.registry import RegistryKeyError
from repro.scenario.compile import compile_scenario
from repro.scenario.library import find_scenario
from repro.scenario.run import serve_compiled
from repro.service import (ServiceParams, account, build_plan, jain_index,
                           policy_names, profile_tenants)
from repro.service.batching import (Batch, NominalClock, ServicePlan,
                                    _closed_feedback_plan, _take_batch)
from repro.service.sched import SchedState, policy_by_name
from repro.service.server import batch_boundaries, generate_service_trace
from repro.service.traffic import Request, generate_requests, think_gap
from repro.sim.config import DEFAULT_CONFIG

FREQ = DEFAULT_CONFIG.processor.frequency_hz

#: A contended open-loop cell with real churn: the shape the control
#: loop is for (small enough that the full suite stays CI-sized).
CHURN = ServiceParams(n_clients=16, n_requests=400, workers=2,
                      pattern="churn", churn_period_cycles=20000.0,
                      churn_active_fraction=0.25)


# -- the inlined legacy dispatch loops (pre-scheduler, verbatim logic) ----------


def _legacy_stream_plan(params, clock):
    """The pre-scheduler open-loop dispatch simulation, decision for
    decision: bounded-queue admission, head-of-line service, one
    earliest-free clock per worker slot."""
    stream = generate_requests(params)
    workers = max(1, params.workers)
    free = [0.0] * workers
    queue, batches, rejected = [], [], []
    iterations = 0
    position = 0

    def admit_until(now):
        nonlocal position
        while position < len(stream) and stream[position].arrival <= now:
            request = stream[position]
            position += 1
            if params.max_queue and len(queue) >= params.max_queue:
                rejected.append(request)
            else:
                queue.append(request)

    while position < len(stream) or queue:
        iterations += 1
        slot = min(range(workers), key=lambda w: free[w])
        now = free[slot]
        if not queue:
            now = max(now, stream[position].arrival)
        admit_until(now)
        if not queue:
            free[slot] = now
            continue
        head = queue[0]
        members = _take_batch(params, queue)
        batches.append(Batch(index=len(batches), client=head.client,
                             requests=tuple(members), worker=slot))
        free[slot] = now + clock.batch_cycles(len(members))
    return ServicePlan(params=params, batches=batches, rejected=rejected,
                       loop_iterations=iterations)


def _legacy_closed_plan(params, clock):
    """The pre-scheduler closed feedback loop, same discipline."""
    rng = random.Random(params.seed)
    workers = max(1, params.workers)
    free = [0.0] * workers
    pending = [(think_gap(params, rng, 0.0), client)
               for client in range(params.n_clients)]
    heapq.heapify(pending)
    queue, batches, rejected = [], [], []
    issued = 0
    iterations = 0

    while True:
        iterations += 1
        slot = min(range(workers), key=lambda w: free[w])
        now = free[slot]
        while pending and issued < params.n_requests and \
                pending[0][0] <= now:
            ready, client = heapq.heappop(pending)
            request = Request(
                rid=issued, client=client, arrival=ready,
                is_write=rng.random() >= params.read_fraction)
            issued += 1
            if params.max_queue and len(queue) >= params.max_queue:
                rejected.append(request)
                heapq.heappush(
                    pending, (ready + think_gap(params, rng, ready), client))
            else:
                queue.append(request)
        if not queue:
            if issued >= params.n_requests or not pending:
                break
            free[slot] = max(now, pending[0][0])
            continue
        head = queue[0]
        members = _take_batch(params, queue)
        completion = now + clock.batch_cycles(len(members))
        batches.append(Batch(index=len(batches), client=head.client,
                             requests=tuple(members), worker=slot))
        free[slot] = completion
        for request in members:
            heapq.heappush(
                pending,
                (completion + think_gap(params, rng, completion),
                 request.client))
    return ServicePlan(params=params, batches=batches, rejected=rejected,
                       loop_iterations=iterations)


class TestStaticBitIdentity:
    """``static`` (the default) must reproduce the legacy loop exactly."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_stream_plan_is_bit_identical(self, workers):
        params = replace(CHURN, workers=workers)
        current = build_plan(params)
        legacy = _legacy_stream_plan(params, NominalClock(params))
        assert current.batches == legacy.batches
        assert current.rejected == legacy.rejected
        assert current.loop_iterations == legacy.loop_iterations
        assert current.shed == [] and current.migrations == 0 \
            and current.epochs == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_closed_feedback_plan_is_bit_identical(self, workers):
        params = ServiceParams(n_clients=6, n_requests=120, workers=workers,
                               arrival="closed", dispatch="replay")
        clock = NominalClock(params)
        policy = policy_by_name("static")
        state = SchedState(params, clock, max(1, params.workers))
        current = _closed_feedback_plan(params, clock, policy, state)
        legacy = _legacy_closed_plan(params, clock)
        assert current.batches == legacy.batches
        assert current.rejected == legacy.rejected
        assert current.loop_iterations == legacy.loop_iterations
        assert state.shed == [] and state.migrations == 0

    def test_default_policy_is_static(self):
        assert ServiceParams().sched_policy == "static"

    def test_static_elides_from_the_cache_identity(self):
        # The scheduler must not invalidate any pre-existing cached
        # trace: at defaults, none of its knobs appear in the identity.
        base = WorkloadSpec.service(n_clients=8, n_requests=80)
        explicit = WorkloadSpec.service(n_clients=8, n_requests=80,
                                        sched_policy="static",
                                        slo_p99_cycles=0.0,
                                        sched_epoch_batches=32)
        assert base.cache_key() == explicit.cache_key()
        changed = WorkloadSpec.service(n_clients=8, n_requests=80,
                                       sched_policy="weighted_fair")
        assert changed.cache_key() != base.cache_key()


class TestRegistry:
    def test_builtin_roster(self):
        assert policy_names() == ["slo_adaptive", "static", "weighted_fair"]

    def test_unknown_policy_lists_the_roster(self):
        with pytest.raises(KeyError, match="static"):
            policy_by_name("fifo")

    def test_params_validate_the_policy(self):
        with pytest.raises(ValueError, match="static"):
            ServiceParams(sched_policy="fifo")

    def test_params_validate_the_slo(self):
        with pytest.raises(ValueError):
            ServiceParams(slo_p99_cycles=-1.0)
        with pytest.raises(ValueError):
            ServiceParams(sched_epoch_batches=0)


class TestRebalancingConservation:
    """Migrations move work between slots; they never create, destroy,
    or duplicate it."""

    @pytest.fixture(scope="class")
    def plan(self):
        params = replace(CHURN, sched_policy="slo_adaptive",
                         sched_epoch_batches=8)
        return build_plan(params)

    def test_control_loop_actually_ran(self, plan):
        assert plan.epochs > 0
        assert plan.migrations > 0

    def test_requests_partition_exactly(self, plan):
        offered = generate_requests(plan.params)
        outcome = [r.rid for b in plan.batches for r in b.requests]
        outcome += [r.rid for r in plan.rejected]
        outcome += [r.rid for r in plan.shed]
        assert sorted(outcome) == [r.rid for r in offered]

    def test_batches_keep_the_window_discipline(self, plan):
        # Reordering picks *which* client is served, never mixes
        # clients inside one permission window.
        for batch in plan.batches:
            assert len({r.client for r in batch.requests}) == 1
            assert batch.client == batch.requests[0].client
            assert 0 <= batch.worker < plan.params.workers

    def test_replayed_busy_cycles_are_conserved(self, plan):
        # The rebalanced plan replays like any other: per-slot busy
        # cycles sum to the whole trace's inter-mark service time.
        trace, _ = generate_service_trace(plan.params)
        marks = batch_boundaries(trace)
        stats = replay_one(trace, "mpk_virt", marks=marks)
        summary = account(plan, trace, stats, frequency_hz=FREQ)
        deltas, previous = [], 0.0
        for cycle in stats.mark_cycles:
            deltas.append(cycle - previous)
            previous = cycle
        assert sum(summary.worker_busy.values()) == \
            pytest.approx(sum(deltas))
        assert summary.n_served == plan.n_served
        assert summary.n_shed == len(plan.shed)


class TestAccounting:
    @pytest.fixture(scope="class")
    def summary(self):
        params = ServiceParams(n_clients=8, n_requests=160,
                               slo_p99_cycles=6000.0)
        plan = build_plan(params)
        trace, _ = generate_service_trace(params)
        stats = replay_one(trace, "mpk_virt",
                           marks=batch_boundaries(trace))
        return account(plan, trace, stats, frequency_hz=FREQ)

    def test_attainment_is_monotone_in_the_target(self, summary):
        sched = summary.sched
        targets = [1.0, 500.0, 2000.0, 6000.0, 20000.0, 1e9]
        values = [sched.attainment_at(t) for t in targets]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_no_target_means_full_attainment(self, summary):
        assert summary.sched.attainment_at(0.0) == 1.0
        assert summary.sched.attainment_at(-1.0) == 1.0

    def test_fairness_stays_in_jain_bounds(self, summary):
        n = len(summary.sched.clients)
        assert n > 1
        assert 1.0 / n <= summary.fairness <= 1.0

    def test_jain_index_extremes(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_index([]) == 1.0

    def test_summary_dict_carries_the_sched_block(self, summary):
        payload = summary.to_dict()
        assert payload["shed"] == summary.n_shed
        sched = payload["sched"]
        assert set(sched["per_client"]) == \
            {str(client) for client in summary.sched.clients}
        assert 0.0 <= sched["slo_attainment"] <= 1.0


class TestTenantProfiles:
    def test_classes_partition_the_tenants(self):
        params = replace(CHURN, workers=1)
        plan = build_plan(params)
        trace, _ = generate_service_trace(params)
        stats = replay_one(trace, "mpk_virt",
                           marks=batch_boundaries(trace))
        summary = account(plan, trace, stats, frequency_hz=FREQ)
        profiles = profile_tenants(plan, summary.sched, summary.wall_cycles)
        assert profiles
        for profile in profiles:
            classes = set(profile.classes)
            # Exactly one of each opposed pair.
            assert len(classes & {"hot", "long_tail"}) == 1
            assert len(classes & {"read_heavy", "write_heavy"}) == 1
        assert any("hot" in p.classes for p in profiles)
        assert any("long_tail" in p.classes for p in profiles)


class TestJobsDeterminism:
    def test_summaries_invariant_under_repro_jobs(self, tmp_path,
                                                  monkeypatch):
        spec = WorkloadSpec.service(n_clients=8, n_requests=120, workers=2,
                                    pattern="churn",
                                    sched_policy="slo_adaptive",
                                    slo_p99_cycles=8000.0)

        def run(jobs):
            monkeypatch.setenv("REPRO_JOBS", str(jobs))
            TraceCache.clear_memory()
            engine = Engine(cache=TraceCache(tmp_path / f"jobs{jobs}"))
            row = summaries_for_spec(ExperimentRunner(engine=engine),
                                     spec, ["mpkv", "dv"])
            return {name: summary.to_dict()
                    for name, summary in row.items()}

        try:
            assert run(1) == run(4)
        finally:
            TraceCache.clear_memory()


class TestSloChurnScenario:
    def test_adaptive_strictly_beats_static_for_keyed_schemes(self,
                                                              tmp_path):
        # The PR's acceptance bar, on the smoke-sized grid: the SLO
        # valve must strictly improve attainment for the schemes churn
        # punishes, while static stays the baseline.
        compiled = compile_scenario(find_scenario("slo_churn"), smoke=True)
        engine = Engine(cache=TraceCache(tmp_path / "traces"))
        try:
            outcomes = serve_compiled(compiled,
                                      runner=ExperimentRunner(engine=engine))
        finally:
            TraceCache.clear_memory()
        attainment = {}
        for cell, summaries in outcomes:
            policy = cell.spec.params.sched_policy
            for name, summary in summaries.items():
                if summary is not None:
                    attainment[(policy, name)] = summary.slo_attainment
        for name in ("mpkv", "libmpk"):
            assert attainment[("slo_adaptive", name)] > \
                attainment[("static", name)], name


class TestCli:
    def test_unknown_policy_lists_the_roster(self, capsys):
        code = service_main(["--policy", "nosuch", "--clients", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "nosuch" in err
        assert "static" in err and "slo_adaptive" in err

    def test_unknown_arrival_pattern_lists_the_roster(self, capsys):
        code = service_main(["--arrivals", "nosuch", "--clients", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "waves" in err and "churn" in err

    def test_negative_slo_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            service_main(["--slo", "-5"])
