"""Traffic-generation determinism and distributional properties."""

from collections import Counter

import pytest

from repro.service import ServiceParams, generate_requests


class TestDeterminism:
    @pytest.mark.parametrize("arrival", ["open", "closed"])
    def test_same_params_identical_stream(self, arrival):
        params = ServiceParams(n_clients=16, n_requests=300, arrival=arrival)
        assert generate_requests(params) == generate_requests(params)

    def test_seed_changes_the_stream(self):
        base = ServiceParams(n_clients=16, n_requests=300)
        import dataclasses
        other = dataclasses.replace(base, seed=base.seed + 1)
        assert generate_requests(base) != generate_requests(other)


class TestOpenLoop:
    def test_sorted_arrivals_and_dense_rids(self):
        params = ServiceParams(n_clients=8, n_requests=200)
        stream = generate_requests(params)
        assert [request.rid for request in stream] == list(range(200))
        arrivals = [request.arrival for request in stream]
        assert arrivals == sorted(arrivals)
        assert all(arrival > 0 for arrival in arrivals)

    def test_mean_interarrival_tracks_the_knob(self):
        params = ServiceParams(n_clients=8, n_requests=2000,
                               interarrival_cycles=500.0)
        stream = generate_requests(params)
        mean = stream[-1].arrival / len(stream)
        assert mean == pytest.approx(500.0, rel=0.15)

    def test_zipf_skews_toward_hot_clients(self):
        params = ServiceParams(n_clients=32, n_requests=2000, zipf=0.9)
        counts = Counter(r.client for r in generate_requests(params))
        uniform_share = params.n_requests / params.n_clients
        assert max(counts.values()) > 2 * uniform_share

    def test_zipf_zero_is_roughly_uniform(self):
        params = ServiceParams(n_clients=8, n_requests=4000, zipf=0.0)
        counts = Counter(r.client for r in generate_requests(params))
        assert len(counts) == 8
        assert max(counts.values()) < 2 * min(counts.values())

    @pytest.mark.parametrize("read_fraction, expect_writes",
                             [(1.0, False), (0.0, True)])
    def test_read_fraction_extremes(self, read_fraction, expect_writes):
        params = ServiceParams(n_clients=4, n_requests=200,
                               read_fraction=read_fraction)
        writes = [r.is_write for r in generate_requests(params)]
        assert all(writes) if expect_writes else not any(writes)


class TestClosedLoop:
    def test_one_outstanding_request_per_client(self):
        params = ServiceParams(n_clients=6, n_requests=300, arrival="closed")
        stream = generate_requests(params)
        assert len(stream) == 300
        per_client = {}
        for request in stream:
            per_client.setdefault(request.client, []).append(request.arrival)
        # Every client participates and its arrivals strictly increase
        # (the next request is only issued after the previous completes).
        assert set(per_client) == set(range(6))
        for arrivals in per_client.values():
            assert arrivals == sorted(arrivals)
            assert len(set(arrivals)) == len(arrivals)

    def test_sorted_by_arrival(self):
        params = ServiceParams(n_clients=6, n_requests=300, arrival="closed")
        arrivals = [r.arrival for r in generate_requests(params)]
        assert arrivals == sorted(arrivals)
