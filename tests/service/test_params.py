"""Parameter validation and the nominal service-cost model."""

import dataclasses

import pytest

from repro.service import ServiceParams, nominal_request_cycles


class TestValidation:
    def test_defaults_are_valid(self):
        ServiceParams()

    @pytest.mark.parametrize("field, value", [
        ("arrival", "poisson"),
        ("batching", "domain"),
        ("n_clients", 0),
        ("batch_limit", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            ServiceParams(**{field: value})

    def test_frozen(self):
        params = ServiceParams()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.n_clients = 128


class TestScaling:
    def test_scaled_multiplies_requests(self):
        params = ServiceParams(n_requests=1000)
        assert params.scaled(0.5).n_requests == 500
        assert params.scaled(3.0).n_requests == 3000

    def test_scaled_floors_at_one_request(self):
        assert ServiceParams(n_requests=10).scaled(0.0).n_requests == 1

    def test_scaled_touches_nothing_else(self):
        params = ServiceParams(n_clients=32, seed=11)
        scaled = params.scaled(2.0)
        assert dataclasses.replace(scaled, n_requests=params.n_requests) \
            == params


class TestNominalCost:
    def test_grows_with_compute(self):
        cheap = ServiceParams(compute_per_request=100)
        dear = ServiceParams(compute_per_request=1000)
        assert nominal_request_cycles(dear) > nominal_request_cycles(cheap)

    def test_write_words_weighted_by_write_fraction(self):
        reads = ServiceParams(read_fraction=1.0, write_words=100)
        writes = ServiceParams(read_fraction=0.0, write_words=100)
        assert nominal_request_cycles(writes) > nominal_request_cycles(reads)

    def test_default_load_is_past_saturation(self):
        # The default open-loop interarrival sits below the nominal
        # service cost on purpose: queues must build for batching and
        # admission control to have anything to do.
        params = ServiceParams()
        assert params.interarrival_cycles < nominal_request_cycles(params)
