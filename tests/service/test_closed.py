"""Scheme-keyed closed-loop serving: calibration, divergence, caching."""

import pytest

from repro.engine import Engine, TraceCache, WorkloadSpec, replay_one
from repro.errors import SimulationError
from repro.service import (ServiceParams, account, build_plan,
                           build_plan_keyed, generate_service_trace_keyed,
                           scheme_clock)
from repro.service.batching import CalibratedClock
from repro.service.closed import CALIBRATION_REQUESTS, calibration_params
from repro.service.server import batch_boundaries
from repro.sim.config import DEFAULT_CONFIG

CLOSED = ServiceParams(n_clients=6, n_requests=120, arrival="closed",
                       dispatch="replay")
FREQ = DEFAULT_CONFIG.processor.frequency_hz


@pytest.fixture
def engine(tmp_path):
    engine = Engine(cache=TraceCache(tmp_path / "traces"))
    yield engine
    TraceCache.clear_memory()


class TestCalibration:
    def test_calibration_params_are_open_nominal(self):
        params = calibration_params(CLOSED)
        assert params.dispatch == "nominal"
        assert params.arrival == "open"
        assert params.pattern == "poisson"
        assert params.workers == 1
        assert params.max_queue == 0
        assert params.n_requests <= CALIBRATION_REQUESTS

    def test_scheme_clock_is_calibrated_and_memoized(self):
        clock = scheme_clock(CLOSED, "domain_virt")
        assert isinstance(clock, CalibratedClock)
        assert clock.scheme == "domain_virt"
        assert clock.window_cycles >= 0.0
        assert clock.per_request_cycles >= 1.0
        # Process-local memo: the second lookup is the same object.
        assert scheme_clock(CLOSED, "domain_virt") is clock

    def test_slower_scheme_gets_slower_clock(self):
        dv = scheme_clock(CLOSED, "domain_virt")
        mpkv = scheme_clock(CLOSED, "mpk_virt")
        assert dv.batch_cycles(1) != mpkv.batch_cycles(1)


class TestKeyedPlans:
    def test_plans_diverge_per_scheme(self):
        # The whole point of the closed loop: a scheme's completions
        # gate its clients' next issues, so dv and mpkv get genuinely
        # different schedules, not one stream re-timed.
        dv = build_plan_keyed(CLOSED, "domain_virt")
        mpkv = build_plan_keyed(CLOSED, "mpk_virt")
        arrivals = lambda plan: [request.arrival for batch in plan.batches
                                 for request in batch.requests]
        assert arrivals(dv) != arrivals(mpkv)

    def test_plans_are_deterministic(self):
        assert build_plan_keyed(CLOSED, "domain_virt") == \
            build_plan_keyed(CLOSED, "domain_virt")

    def test_nominal_build_plan_refuses_replay_dispatch(self):
        with pytest.raises(SimulationError):
            build_plan(CLOSED)

    def test_keyed_requires_replay_dispatch(self):
        with pytest.raises(SimulationError):
            build_plan_keyed(ServiceParams(n_clients=6, n_requests=120),
                             "domain_virt")


class TestKeyedSpecs:
    def test_cache_key_distinct_per_scheme_and_stable(self):
        spec = WorkloadSpec.service(n_clients=6, n_requests=120,
                                    arrival="closed", dispatch="replay")
        dv = spec.keyed("domain_virt")
        assert dv.cache_key() == spec.keyed("domain_virt").cache_key()
        assert dv.cache_key() != spec.keyed("mpk_virt").cache_key()
        assert dv.cache_key() != spec.cache_key()
        assert dv.label.endswith("-domain_virt")

    def test_keyed_trace_round_trips_through_cache(self, engine):
        spec = WorkloadSpec.service(n_clients=6, n_requests=120,
                                    arrival="closed", dispatch="replay")
        vspec = spec.keyed("domain_virt")
        marks = batch_boundaries(engine.trace_for(vspec))
        engine.release(vspec)
        reloaded = engine.trace_for(vspec)  # disk round-trip
        assert engine.cache_stats.disk_hits == 1
        assert batch_boundaries(reloaded) == marks

    def test_replay_marked_keyed_per_scheme_results(self, engine):
        spec = WorkloadSpec.service(n_clients=6, n_requests=120,
                                    arrival="closed", dispatch="replay")
        cell = engine.replay_marked_keyed(
            spec, ("domain_virt", "mpk_virt"))
        assert set(cell) == {"domain_virt", "mpk_virt"}
        for scheme, stats in cell.items():
            plan = build_plan_keyed(CLOSED, scheme)
            assert len(stats.mark_cycles) == len(plan.batches)
            assert stats.baseline_cycles is not None


class TestClosedLoopRejections:
    def test_rejected_retries_survive_accounting(self):
        # A one-slot queue under six eager clients must reject; the
        # rejections ride the budget (retries are fresh offered
        # requests) and must land intact in the summary.
        params = ServiceParams(n_clients=6, n_requests=120,
                               arrival="closed", dispatch="replay",
                               think_cycles=500.0, max_queue=1)
        plan = build_plan_keyed(params, "domain_virt")
        assert plan.rejected
        assert plan.n_served + len(plan.rejected) == 120
        trace, _ws = generate_service_trace_keyed(params, "domain_virt")
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        summary = account(plan, trace, stats, frequency_hz=FREQ)
        assert summary.n_rejected == len(plan.rejected)
        assert summary.n_offered == 120
        assert summary.n_served == plan.n_served
