"""Latency accounting: re-timing, summary invariants, error handling."""

import dataclasses
import json

import pytest

from repro.engine import replay_one
from repro.errors import SimulationError
from repro.service import (ServiceParams, account, batch_boundaries,
                           build_plan, generate_service_trace)
from repro.sim.config import DEFAULT_CONFIG

PARAMS = ServiceParams(n_clients=8, n_requests=150)
FREQ = DEFAULT_CONFIG.processor.frequency_hz


@pytest.fixture(scope="module")
def accounted():
    trace, _ws = generate_service_trace(PARAMS)
    plan = build_plan(PARAMS)
    marks = batch_boundaries(trace)
    stats = replay_one(trace, "domain_virt", marks=marks)
    return plan, trace, stats, account(plan, trace, stats, frequency_hz=FREQ)


class TestSummaryInvariants:
    def test_counts(self, accounted):
        plan, _trace, _stats, summary = accounted
        assert summary.n_served == plan.n_served
        assert summary.n_rejected == len(plan.rejected)
        assert summary.n_offered == PARAMS.n_requests
        assert summary.n_batches == len(plan.batches)
        assert summary.latency.count == plan.n_served

    def test_latencies_are_positive_and_bounded_by_wall(self, accounted):
        _plan, _trace, stats, summary = accounted
        assert summary.latency.min > 0
        assert summary.latency.max <= summary.wall_cycles
        # The wall clock covers at least the busy time of every batch.
        assert summary.wall_cycles >= stats.mark_cycles[-1]

    def test_percentiles_are_ordered(self, accounted):
        summary = accounted[3]
        assert 0 < summary.p50 <= summary.p95 <= summary.p99 \
            <= summary.latency.max

    def test_throughput_consistent_with_wall(self, accounted):
        summary = accounted[3]
        assert summary.throughput_rps == pytest.approx(
            summary.n_served * FREQ / summary.wall_cycles)

    def test_to_dict_is_json_safe(self, accounted):
        exported = json.loads(json.dumps(accounted[3].to_dict()))
        assert exported["scheme"] == "domain_virt"
        assert exported["served"] == accounted[0].n_served
        assert exported["latency_cycles"]["p50"] <= \
            exported["latency_cycles"]["p99"]


class TestSchemeSensitivity:
    def test_slower_scheme_means_worse_tail_and_throughput(self, accounted):
        plan, trace, _stats, fast = accounted
        marks = batch_boundaries(trace)
        slow = account(plan, trace, replay_one(trace, "libmpk", marks=marks),
                       frequency_hz=FREQ)
        assert slow.p99 > fast.p99
        assert slow.throughput_rps < fast.throughput_rps
        # Same schedule: serving counts are scheme-independent.
        assert (slow.n_served, slow.n_batches, slow.coalesced) == \
            (fast.n_served, fast.n_batches, fast.coalesced)


class TestErrors:
    def test_unmarked_stats_are_rejected(self, accounted):
        plan, trace, _stats, _summary = accounted
        unmarked = replay_one(trace, "domain_virt")
        with pytest.raises(SimulationError):
            account(plan, trace, unmarked, frequency_hz=FREQ)

    def test_mark_count_mismatch_is_rejected(self, accounted):
        plan, trace, stats, _summary = accounted
        truncated = dataclasses.replace(
            stats, mark_cycles=stats.mark_cycles[:-1])
        with pytest.raises(SimulationError):
            account(plan, trace, truncated, frequency_hz=FREQ)
