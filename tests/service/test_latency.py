"""Latency accounting: re-timing, summary invariants, error handling."""

import dataclasses
import json

import pytest

from repro.engine import replay_one
from repro.errors import SimulationError
from repro.service import (ServiceParams, account, batch_boundaries,
                           build_plan, generate_service_trace)
from repro.service.batching import Batch, ServicePlan
from repro.service.latency import served_batches
from repro.service.server import ServiceWorkload, batch_markers
from repro.service.traffic import Request
from repro.sim.config import DEFAULT_CONFIG

PARAMS = ServiceParams(n_clients=8, n_requests=150)
FREQ = DEFAULT_CONFIG.processor.frequency_hz


@pytest.fixture(scope="module")
def accounted():
    trace, _ws = generate_service_trace(PARAMS)
    plan = build_plan(PARAMS)
    marks = batch_boundaries(trace)
    stats = replay_one(trace, "domain_virt", marks=marks)
    return plan, trace, stats, account(plan, trace, stats, frequency_hz=FREQ)


class TestSummaryInvariants:
    def test_counts(self, accounted):
        plan, _trace, _stats, summary = accounted
        assert summary.n_served == plan.n_served
        assert summary.n_rejected == len(plan.rejected)
        assert summary.n_offered == PARAMS.n_requests
        assert summary.n_batches == len(plan.batches)
        assert summary.latency.count == plan.n_served

    def test_latencies_are_positive_and_bounded_by_wall(self, accounted):
        _plan, _trace, stats, summary = accounted
        assert summary.latency.min > 0
        assert summary.latency.max <= summary.wall_cycles
        # The wall clock covers at least the busy time of every batch.
        assert summary.wall_cycles >= stats.mark_cycles[-1]

    def test_percentiles_are_ordered(self, accounted):
        summary = accounted[3]
        assert 0 < summary.p50 <= summary.p95 <= summary.p99 \
            <= summary.latency.max

    def test_throughput_consistent_with_wall(self, accounted):
        summary = accounted[3]
        assert summary.throughput_rps == pytest.approx(
            summary.n_served * FREQ / summary.wall_cycles)

    def test_to_dict_is_json_safe(self, accounted):
        exported = json.loads(json.dumps(accounted[3].to_dict()))
        assert exported["scheme"] == "domain_virt"
        assert exported["served"] == accounted[0].n_served
        assert exported["latency_cycles"]["p50"] <= \
            exported["latency_cycles"]["p99"]


class TestSchemeSensitivity:
    def test_slower_scheme_means_worse_tail_and_throughput(self, accounted):
        plan, trace, _stats, fast = accounted
        marks = batch_boundaries(trace)
        slow = account(plan, trace, replay_one(trace, "libmpk", marks=marks),
                       frequency_hz=FREQ)
        assert slow.p99 > fast.p99
        assert slow.throughput_rps < fast.throughput_rps
        # Same schedule: serving counts are scheme-independent.
        assert (slow.n_served, slow.n_batches, slow.coalesced) == \
            (fast.n_served, fast.n_batches, fast.coalesced)


class TestPerWorkerAccounting:
    """Differential checks of the per-worker wall-clock recurrence."""

    @pytest.fixture(scope="class")
    def multi(self):
        params = dataclasses.replace(PARAMS, workers=3)
        trace, _ws = generate_service_trace(params)
        plan = build_plan(params)
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        return plan, trace, stats, account(plan, trace, stats,
                                           frequency_hz=FREQ)

    def test_busy_cycles_conserve_replay_total(self, multi):
        # Inter-mark deltas telescope: however batches are attributed
        # to workers, their busy cycles must sum to the replay's last
        # mark (the cycles spent serving, in total).
        _plan, _trace, stats, summary = multi
        assert sum(summary.worker_busy.values()) == \
            pytest.approx(stats.mark_cycles[-1], rel=1e-12)

    def test_every_planned_slot_is_accounted(self, multi):
        plan, trace, stats, summary = multi
        assert set(summary.worker_busy) == \
            {batch.worker for batch in plan.batches} == {0, 1, 2}
        assert 0.0 < summary.busy_fraction <= 1.0
        # Three workers draining the same load finish sooner than one
        # shared wall clock would (the pre-per-worker recurrence).
        order = served_batches(trace, plan)
        assert summary.wall_cycles < serial_wall(order, stats)

    def test_workers1_degenerates_to_serial_recurrence(self, accounted):
        # With one worker the per-slot map holds a single clock; the
        # result must be bit-identical (==, not approx) to the serial
        # recurrence computed independently here.
        plan, _trace, stats, summary = accounted
        wall = 0.0
        expected = []
        previous = 0.0
        for batch, elapsed in zip(plan.batches, stats.mark_cycles):
            delta = elapsed - previous
            previous = elapsed
            ready = max(request.arrival for request in batch.requests)
            wall = max(wall, ready) + delta
            for request in batch.requests:
                expected.append(wall - request.arrival)
        assert summary.wall_cycles == wall
        assert summary.latency.samples == expected
        assert summary.worker_busy == {0: pytest.approx(
            stats.mark_cycles[-1], rel=1e-12)}

    def test_idle_first_quantum_worker_attribution(self):
        # Worker slot 1 closes the FIRST window of the trace while slot
        # 0 is still idle — inferring slots from whichever tid closes a
        # window first (the old scheme) would swap the attribution; the
        # INIT_PERM roster in the markers must not.
        params = ServiceParams(n_clients=2, n_requests=4, workers=2)
        workload = ServiceWorkload(params)
        requests = [Request(rid=i, client=i % 2, arrival=10.0 * i,
                            is_write=False) for i in range(3)]
        batches = [
            Batch(index=0, client=0, requests=(requests[0],), worker=1),
            Batch(index=1, client=1, requests=(requests[1],), worker=0),
            Batch(index=2, client=0, requests=(requests[2],), worker=1),
        ]
        plan = ServicePlan(params=params, batches=batches)
        tids = workload.worker_tids
        workload.serve_batch(batches[0], tids[1])
        workload.serve_batch(batches[1], tids[0])
        workload.serve_batch(batches[2], tids[1])
        trace = workload.finish()

        assert [marker.worker for marker in batch_markers(trace)] == \
            [1, 0, 1]
        assert [batch.index for batch in served_batches(trace, plan)] == \
            [0, 1, 2]
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        summary = account(plan, trace, stats, frequency_hz=FREQ)
        assert set(summary.worker_busy) == {0, 1}
        # Slot 1 served two of the three (equal-sized) batches.
        assert summary.worker_busy[1] > summary.worker_busy[0]

    def test_all_rejected_run_accounts_cleanly(self):
        # A run that served nothing: empty plan, trace with only the
        # deny-by-default prologue, unmarked replay.  The summary must
        # degrade to zeros, not raise.
        params = ServiceParams(n_clients=2, n_requests=4)
        workload = ServiceWorkload(params)
        trace = workload.finish()
        rejected = [Request(rid=i, client=i % 2, arrival=float(i),
                            is_write=False) for i in range(4)]
        plan = ServicePlan(params=params, batches=[], rejected=rejected)
        stats = replay_one(trace, "domain_virt")
        summary = account(plan, trace, stats, frequency_hz=FREQ)
        assert summary.n_served == 0
        assert summary.n_rejected == 4
        assert summary.n_offered == 4
        assert summary.wall_cycles == 0.0
        assert summary.throughput_rps == 0.0
        assert summary.p50 == summary.p99 == 0.0
        assert summary.busy_fraction == 0.0
        json.dumps(summary.to_dict())  # stays JSON-safe


def serial_wall(order, stats):
    """The old single-clock recurrence, for the multi-worker contrast."""
    wall = 0.0
    previous = 0.0
    for batch, elapsed in zip(order, stats.mark_cycles):
        delta = elapsed - previous
        previous = elapsed
        ready = max(request.arrival for request in batch.requests)
        wall = max(wall, ready) + delta
    return wall


class TestErrors:
    def test_unmarked_stats_are_rejected(self, accounted):
        plan, trace, _stats, _summary = accounted
        unmarked = replay_one(trace, "domain_virt")
        with pytest.raises(SimulationError):
            account(plan, trace, unmarked, frequency_hz=FREQ)

    def test_mark_count_mismatch_is_rejected(self, accounted):
        plan, trace, stats, _summary = accounted
        truncated = dataclasses.replace(
            stats, mark_cycles=stats.mark_cycles[:-1])
        with pytest.raises(SimulationError):
            account(plan, trace, truncated, frequency_hz=FREQ)
