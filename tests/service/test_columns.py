"""Differential suite: the columnar pipeline vs. the legacy per-object
loops it replaced.

Three layers of equivalence, each pinned bit-for-bit:

* **traffic** — :func:`generate_request_columns` against verbatim copies
  of the pre-streaming scalar generators (per-request ``rng`` calls,
  heap-of-tuples closed loop, post-hoc sort), across both disciplines ×
  every rate pattern × several seeds;
* **emission order** — the closed loop's deleted ``requests.sort(...)``
  really was a no-op: pops never decrease in time and rids increase in
  pop order, so the emitted stream is already sorted by
  ``(arrival, rid)``;
* **planning / serving** — the static planner fast path equals the
  object planner, and the streamed columnar server emits event-for-event
  the same trace as the retained ``serve_objects`` recorder path
  (complementing the pre-PR golden hashes in
  ``tests/service/test_golden_traces.py``).
"""

import heapq
import random

import numpy as np
import pytest

from repro.service import ServiceParams, build_plan
from repro.service.params import nominal_request_cycles
from repro.service.server import ServiceWorkload
from repro.service.traffic import (Request, RequestColumns,
                                   arrival_gap, generate_request_columns,
                                   generate_requests, think_gap)
from repro.workloads.micro import ZipfSampler
from repro.service.arrivals import pattern_by_name


# ---------------------------------------------------------------------------
# Verbatim pre-streaming generators (the scalar reference).

def _legacy_open_loop(params, rng):
    sampler = ZipfSampler(params.n_clients, params.zipf, rng)
    pattern = pattern_by_name(params.pattern)
    clock = 0.0
    requests = []
    for rid in range(params.n_requests):
        clock += arrival_gap(params, rng, clock)
        client = pattern.remap_client(params, clock, sampler.sample(),
                                      params.n_clients)
        requests.append(Request(
            rid=rid, client=client, arrival=clock,
            is_write=rng.random() >= params.read_fraction))
    return requests


def _legacy_closed_loop(params, rng):
    service = nominal_request_cycles(params)
    pending = [(think_gap(params, rng, 0.0), client)
               for client in range(params.n_clients)]
    heapq.heapify(pending)
    server_free = 0.0
    requests = []
    for rid in range(params.n_requests):
        arrival, client = heapq.heappop(pending)
        requests.append(Request(
            rid=rid, client=client, arrival=arrival,
            is_write=rng.random() >= params.read_fraction))
        completion = max(server_free, arrival) + service
        server_free = completion
        heapq.heappush(
            pending,
            (completion + think_gap(params, rng, completion), client))
    requests.sort(key=lambda request: (request.arrival, request.rid))
    return requests


LEGACY = {"open": _legacy_open_loop, "closed": _legacy_closed_loop}

PATTERNS = ["poisson", "burst", "diurnal", "churn", "waves"]


def _assert_stream_equal(cols, legacy):
    assert len(cols) == len(legacy)
    assert cols.rids.tolist() == [r.rid for r in legacy]
    assert cols.clients.tolist() == [r.client for r in legacy]
    # Bit-identical floats, not approximately equal.
    assert cols.arrivals.tolist() == [r.arrival for r in legacy]
    assert cols.is_write.tolist() == [r.is_write for r in legacy]


@pytest.mark.parametrize("seed", [0, 7, 123])
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("arrival", ["open", "closed"])
def test_columns_equal_legacy_stream(arrival, pattern, seed):
    params = ServiceParams(n_clients=12, n_requests=300, arrival=arrival,
                           pattern=pattern, seed=seed)
    cols = generate_request_columns(params)
    legacy = LEGACY[arrival](params, random.Random(params.seed))
    _assert_stream_equal(cols, legacy)


@pytest.mark.parametrize("kwargs", [
    dict(zipf=0.0),
    dict(read_fraction=0.0),
    dict(read_fraction=1.0),
    dict(n_clients=1),
    dict(n_requests=1),
    dict(n_requests=0),
])
def test_columns_equal_legacy_stream_edges(kwargs):
    for arrival in ("open", "closed"):
        merged = {"n_clients": 6, "n_requests": 80, "arrival": arrival,
                  **kwargs}
        params = ServiceParams(**merged)
        cols = generate_request_columns(params)
        legacy = LEGACY[arrival](params, random.Random(params.seed))
        _assert_stream_equal(cols, legacy)


def test_generate_requests_object_view_matches():
    params = ServiceParams(n_clients=8, n_requests=120)
    assert generate_requests(params) == \
        _legacy_open_loop(params, random.Random(params.seed))


@pytest.mark.parametrize("pattern", PATTERNS)
def test_closed_loop_emission_already_sorted(pattern):
    """The deleted post-hoc sort was a no-op: every next-issue time
    pushed back exceeds the arrival just popped, so pop times never
    decrease, and rids increase in pop order — the emitted stream is
    already sorted by ``(arrival, rid)``."""
    params = ServiceParams(n_clients=16, n_requests=500, arrival="closed",
                           pattern=pattern)
    cols = generate_request_columns(params)
    arrivals = cols.arrivals
    assert np.all(arrivals[1:] >= arrivals[:-1])
    assert cols.rids.tolist() == sorted(
        range(len(cols)),
        key=lambda i: (arrivals[i], cols.rids[i]))


def test_request_columns_round_trip():
    params = ServiceParams(n_clients=8, n_requests=64)
    cols = generate_request_columns(params)
    objects = cols.to_requests()
    back = RequestColumns.from_requests(objects)
    _assert_stream_equal(back, objects)
    assert cols.request(5) == objects[5]
    assert cols.to_requests(rows=[3, 1]) == [objects[3], objects[1]]


# ---------------------------------------------------------------------------
# Planner fast path and streamed server vs. the retained object paths.

SERVE_CASES = {
    "default": dict(n_clients=8, n_requests=150),
    "workers": dict(n_clients=12, n_requests=200, workers=3),
    "quantum1": dict(n_clients=12, n_requests=200, workers=4, quantum=1),
    "storms": dict(n_clients=8, n_requests=150, revoke_every_batches=4,
                   revoke_fraction=0.5),
    "shared": dict(n_clients=8, n_requests=150, shared_domains=2,
                   shared_words=4),
    "closed": dict(n_clients=6, n_requests=100, arrival="closed"),
    "no-batching": dict(n_clients=8, n_requests=150, batching="none"),
    "multipage": dict(n_clients=4, n_requests=40, read_words=700,
                      write_words=10, secret_size=8192, pool_size=1 << 16),
}


def _plan_signature(plan):
    cols = plan.columns
    return (cols.batch_starts.tolist(), cols.batch_clients.tolist(),
            cols.batch_workers.tolist(),
            cols.requests.rids[cols.member_rows].tolist(),
            cols.requests.rids[cols.rejected_rows].tolist(),
            plan.loop_iterations)


@pytest.mark.parametrize("name", sorted(SERVE_CASES))
def test_plan_columns_equal_object_plan(name):
    """The static planner's columnar fast path packs exactly the same
    batches (members, clients, worker slots, rejections, iteration
    count) as the per-object dispatch loop."""
    params = ServiceParams(**SERVE_CASES[name])
    fast = build_plan(params)
    # The object plan path: rebuild via the batches/rejected object
    # view and re-derive columns from it.
    from repro.service.batching import PlanColumns, ServicePlan
    object_plan = ServicePlan(params, batches=fast.batches,
                              rejected=fast.rejected,
                              loop_iterations=fast.loop_iterations)
    assert _plan_signature(fast) == _plan_signature(object_plan)
    assert fast == object_plan


@pytest.mark.parametrize("name", sorted(SERVE_CASES))
def test_streamed_serve_equals_recorder_serve(name):
    """The chunked columnar emitter produces event-for-event the same
    trace (columns, layout, instruction count) as the retained
    per-event recorder path."""
    params = ServiceParams(**SERVE_CASES[name])
    plan = build_plan(params)

    streamed_ws = ServiceWorkload(params)
    streamed_ws.serve(plan)
    streamed = streamed_ws.finish()

    object_ws = ServiceWorkload(params)
    object_ws.serve_objects(plan)
    legacy = object_ws.finish()

    a, b = streamed.columns, legacy.columns
    assert a.kinds.tolist() == b.kinds.tolist()
    assert a.tids.tolist() == b.tids.tolist()
    assert a.icounts.tolist() == b.icounts.tolist()
    assert a.operand_a.tolist() == b.operand_a.tolist()
    assert a.operand_b.tolist() == b.operand_b.tolist()
    assert streamed.total_instructions == legacy.total_instructions
    assert streamed.layout.ptes == legacy.layout.ptes
    assert streamed.layout.n_threads == legacy.layout.n_threads
