"""docs/SERVICE.md's metric contract must match the obs schema.

Same discipline as ``tests/obs/test_schema_docs.py``, scoped to the
service layer: the "Metric contract" section of ``docs/SERVICE.md``
claims to enumerate the complete ``service.*`` namespace, and
``docs/MULTICORE.md`` documents the cross-core counters by name.  Both
are diffed against :data:`repro.obs.schema.METRICS` so neither doc can
drift from the code.
"""

import re
from pathlib import Path

from repro.obs import schema

DOCS = Path(__file__).resolve().parents[2] / "docs"

_NAME = re.compile(r"`(service\.[a-z0-9_.]+)`")

#: Backticked ``service.*`` names that are event kinds, not metrics.
_EVENTS = {"service.run", "service.client"}


def _documented_names(doc):
    text = (DOCS / doc).read_text()
    return set(_NAME.findall(text)) - _EVENTS


def _schema_names():
    return {name for name in schema.METRICS if name.startswith("service.")}


class TestServiceMetricContract:
    def test_service_md_lists_the_exact_namespace(self):
        assert _documented_names("SERVICE.md") == _schema_names()

    def test_multicore_md_names_exist_in_schema(self):
        documented = _documented_names("MULTICORE.md")
        assert documented, "MULTICORE.md documents no service metrics"
        assert documented <= _schema_names()

    def test_cross_core_counters_are_in_both(self):
        expected = {"service.cross_core_shootdowns",
                    "service.cross_core_shootdown_cycles"}
        assert expected <= _schema_names()
        assert expected <= _documented_names("SERVICE.md")
        assert expected <= _documented_names("MULTICORE.md")

    def test_sched_namespace_is_in_schema_and_both_docs(self):
        # The scheduling subsystem's whole metric namespace: schema,
        # SERVICE.md's contract section, and SCHEDULING.md must agree.
        sched = {name for name in _schema_names()
                 if name.startswith("service.sched.")}
        assert sched, "schema lost the service.sched.* namespace"
        assert sched <= _documented_names("SERVICE.md")
        assert sched <= _documented_names("SCHEDULING.md")

    def test_schema_types_match_the_prose(self):
        # The doc groups names under "counters", "histogram", "gauge"
        # bullets; every name in a bullet must carry that type in the
        # schema.
        text = (DOCS / "SERVICE.md").read_text()
        contract = text.split("## Metric contract", 1)[1]
        contract = contract.split("## Determinism", 1)[0]
        for bullet in re.split(r"\n\* ", contract):
            kind = next((t for t in ("counter", "histogram", "gauge")
                         if bullet.lstrip().startswith(t)), None)
            if kind is None:
                continue
            for name in _NAME.findall(bullet):
                if name == "service.run":
                    continue
                assert schema.METRICS[name][0] == kind, name
