"""Arrival-pattern plugins: churn windows and revocation storms."""

import dataclasses

import pytest

from repro.cpu.trace import PERM
from repro.permissions import Perm
from repro.service import (ServiceParams, batch_boundaries, build_plan,
                           generate_requests, generate_service_trace)
from repro.service.arrivals import pattern_by_name


class TestChurnPattern:
    def test_window_rotates_with_time(self):
        params = ServiceParams(n_clients=16, pattern="churn",
                               churn_period_cycles=1000.0,
                               churn_active_fraction=0.25)
        churn = pattern_by_name("churn")
        first = churn.window(params, 0.0, 16)
        second = churn.window(params, 1000.0, 16)
        assert first == (0, 4)
        assert second == (4, 4)
        assert churn.window(params, 4000.0, 16) == first  # wraps around

    def test_remap_confines_clients_to_the_window(self):
        params = ServiceParams(n_clients=16, pattern="churn",
                               churn_period_cycles=1000.0,
                               churn_active_fraction=0.25)
        churn = pattern_by_name("churn")
        for now in (0.0, 1500.0, 3200.0):
            start, width = churn.window(params, now, 16)
            window = {(start + offset) % 16 for offset in range(width)}
            remapped = {churn.remap_client(params, now, client, 16)
                        for client in range(16)}
            assert remapped <= window

    def test_generated_stream_follows_the_rotation(self):
        params = ServiceParams(n_clients=16, n_requests=600,
                               pattern="churn",
                               churn_active_fraction=0.25)
        clients = {request.client for request in generate_requests(params)}
        # More distinct clients than one window (the window moved), but
        # the stream is still confined to windows, never uniform.
        assert 4 <= len(clients) <= 16

    def test_early_stream_stays_in_the_first_window(self):
        params = ServiceParams(n_clients=16, n_requests=400,
                               pattern="churn",
                               churn_period_cycles=10_000_000.0,
                               churn_active_fraction=0.25)
        clients = {request.client for request in generate_requests(params)}
        assert clients <= {0, 1, 2, 3}

    def test_churn_params_are_validated(self):
        with pytest.raises(ValueError):
            ServiceParams(churn_period_cycles=0.0)
        with pytest.raises(ValueError):
            ServiceParams(churn_active_fraction=0.0)
        with pytest.raises(ValueError):
            ServiceParams(churn_active_fraction=1.5)


class TestRevocationStorms:
    PARAMS = ServiceParams(n_clients=8, n_requests=120,
                           revoke_every_batches=4, revoke_fraction=0.5)

    def test_storm_params_are_validated(self):
        with pytest.raises(ValueError):
            ServiceParams(revoke_every_batches=-1)
        with pytest.raises(ValueError):
            ServiceParams(revoke_fraction=0.0)
        with pytest.raises(ValueError):
            ServiceParams(revoke_fraction=2.0)

    def test_storms_add_none_permission_sweeps(self):
        calm = dataclasses.replace(self.PARAMS, revoke_every_batches=0)
        stormy_trace, _ = generate_service_trace(self.PARAMS)
        calm_trace, _ = generate_service_trace(calm)

        def revocations(trace):
            return sum(1 for event in trace.events
                       if event[0] == PERM and event[4] == int(Perm.NONE))

        plan = build_plan(self.PARAMS)
        storms = len(plan.batches) // self.PARAMS.revoke_every_batches
        swept = max(1, round(self.PARAMS.n_clients
                             * self.PARAMS.revoke_fraction))
        assert revocations(stormy_trace) \
            == revocations(calm_trace) + storms * swept

    def test_batch_boundaries_ignore_storm_revocations(self):
        # Storm sweeps close no open window, so the marker count must
        # still equal the plan's batch count — the accounting contract.
        trace, _ = generate_service_trace(self.PARAMS)
        assert len(batch_boundaries(trace)) \
            == len(build_plan(self.PARAMS).batches)

    def test_storms_change_the_cache_key_but_defaults_do_not(self):
        from repro.engine.job import WorkloadSpec
        plain = WorkloadSpec.service(n_clients=8, n_requests=120)
        stormy = WorkloadSpec.service(n_clients=8, n_requests=120,
                                      revoke_every_batches=4)
        explicit_default = WorkloadSpec.service(n_clients=8, n_requests=120,
                                                revoke_every_batches=0)
        assert stormy.cache_key() != plain.cache_key()
        assert explicit_default.cache_key() == plain.cache_key()

    def test_storms_are_deterministic(self):
        first, _ = generate_service_trace(self.PARAMS)
        second, _ = generate_service_trace(self.PARAMS)
        assert first.events == second.events

    def test_multi_worker_storms_keep_the_marker_contract(self):
        params = dataclasses.replace(self.PARAMS, workers=3, quantum=2)
        trace, _ = generate_service_trace(params)
        assert len(batch_boundaries(trace)) \
            == len(build_plan(params).batches)
