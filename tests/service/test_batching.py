"""Admission control and domain-aware batching of the service planner."""

import dataclasses

from repro.service import ServiceParams, build_plan

SATURATED = dict(n_clients=16, n_requests=400)  # default load: queues build


class TestDeterminism:
    def test_same_params_identical_plan(self):
        params = ServiceParams(**SATURATED)
        assert build_plan(params) == build_plan(params)


class TestConservation:
    def test_every_offered_request_served_or_rejected(self):
        params = ServiceParams(**SATURATED)
        plan = build_plan(params)
        assert plan.n_served + len(plan.rejected) == params.n_requests
        served_rids = [r.rid for batch in plan.batches
                       for r in batch.requests]
        rejected_rids = [r.rid for r in plan.rejected]
        assert sorted(served_rids + rejected_rids) == \
            list(range(params.n_requests))
        assert len(set(served_rids)) == len(served_rids)


class TestBatching:
    def test_client_batches_are_single_client_and_bounded(self):
        params = ServiceParams(**SATURATED, batch_limit=4)
        plan = build_plan(params)
        for batch in plan.batches:
            assert 1 <= len(batch.requests) <= 4
            assert {r.client for r in batch.requests} == {batch.client}
        assert plan.coalesced > 0  # saturation leaves material to coalesce

    def test_none_serves_one_request_per_window(self):
        params = ServiceParams(**SATURATED, batching="none")
        plan = build_plan(params)
        assert all(len(batch.requests) == 1 for batch in plan.batches)
        assert plan.coalesced == 0

    def test_client_batching_strictly_reduces_windows(self):
        batched = build_plan(ServiceParams(**SATURATED))
        unbatched = build_plan(ServiceParams(**SATURATED, batching="none"))
        assert len(batched.batches) < len(unbatched.batches)

    def test_batch_indices_are_dense(self):
        plan = build_plan(ServiceParams(**SATURATED))
        assert [b.index for b in plan.batches] == \
            list(range(len(plan.batches)))


class TestAdmissionControl:
    def test_unbounded_queue_never_rejects(self):
        plan = build_plan(ServiceParams(**SATURATED, max_queue=0))
        assert plan.rejected == []
        assert plan.n_served == SATURATED["n_requests"]

    def test_bounded_queue_rejects_under_overload(self):
        roomy = build_plan(ServiceParams(**SATURATED, max_queue=0))
        tight = build_plan(ServiceParams(**SATURATED, max_queue=8))
        assert len(tight.rejected) > len(roomy.rejected)

    def test_rejects_are_excluded_from_batches(self):
        plan = build_plan(ServiceParams(**SATURATED, max_queue=8))
        rejected = {r.rid for r in plan.rejected}
        served = {r.rid for b in plan.batches for r in b.requests}
        assert not rejected & served


class TestWorkerAssignment:
    def test_earliest_free_uses_every_slot(self):
        plan = build_plan(ServiceParams(**SATURATED, workers=3))
        # Saturated load keeps all three workers busy, and the first
        # batch lands on slot 0 (ties break to the lowest slot).
        assert {batch.worker for batch in plan.batches} == {0, 1, 2}
        assert plan.batches[0].worker == 0

    def test_earliest_free_balances_saturated_load(self):
        plan = build_plan(ServiceParams(**SATURATED, workers=3))
        requests = [0, 0, 0]
        for batch in plan.batches:
            requests[batch.worker] += len(batch.requests)
        # Under saturation no worker idles while another drowns.
        assert min(requests) > 0
        assert max(requests) <= 2 * min(requests)

    def test_single_worker_everything_on_slot_zero(self):
        plan = build_plan(ServiceParams(**SATURATED))
        assert {batch.worker for batch in plan.batches} == {0}


class TestLoadSensitivity:
    def test_light_load_degenerates_to_fifo(self):
        # Interarrival far above service cost: the queue never holds two
        # requests, so client batching finds nothing to coalesce.
        light = dataclasses.replace(ServiceParams(**SATURATED),
                                    interarrival_cycles=50000.0)
        plan = build_plan(light)
        assert plan.coalesced == 0
        assert plan.rejected == []
