"""The server's trace contract: windows, marks, isolation enforcement."""

import pytest

from repro.cpu.trace import INIT_PERM, PERM
from repro.engine import replay_one
from repro.errors import ProtectionFault, SimulationError
from repro.permissions import Perm
from repro.service import (ServiceParams, ServiceWorkload, batch_boundaries,
                           build_plan, generate_service_trace, served_batches)

SMALL = ServiceParams(n_clients=8, n_requests=120)


@pytest.fixture(scope="module")
def generated():
    trace, _ws = generate_service_trace(SMALL)
    return trace, build_plan(SMALL)


class TestTraceShape:
    def test_one_permission_window_per_batch(self, generated):
        trace, plan = generated
        perms = [event for event in trace.events if event[0] == PERM]
        assert len(perms) == 2 * len(plan.batches)
        # Windows strictly alternate: open RW, close NONE, same domain.
        for opener, closer in zip(perms[0::2], perms[1::2]):
            assert opener[4] == int(Perm.RW)
            assert closer[4] == int(Perm.NONE)
            assert opener[3] == closer[3]

    def test_deny_by_default_covers_every_client(self, generated):
        trace, _plan = generated
        inits = [event for event in trace.events if event[0] == INIT_PERM]
        assert len(inits) == SMALL.n_clients  # one worker thread
        assert all(event[4] == int(Perm.NONE) for event in inits)

    def test_generation_is_deterministic(self):
        first, _ = generate_service_trace(SMALL)
        second, _ = generate_service_trace(SMALL)
        assert first.events == second.events


class TestBatchBoundaries:
    def test_one_mark_per_batch_pointing_past_the_close(self, generated):
        trace, plan = generated
        marks = batch_boundaries(trace)
        assert len(marks) == len(plan.batches)
        for mark in marks:
            closer = trace.events[mark - 1]
            assert closer[0] == PERM and closer[4] == int(Perm.NONE)
        assert marks == sorted(marks)

    def test_recoverable_without_a_plan(self, generated):
        # The boundaries come from trace content alone — the property
        # that makes cached traces re-markable.
        trace, plan = generated
        assert len(batch_boundaries(trace)) == len(plan.batches)


class TestServedBatches:
    def test_single_worker_is_plan_order(self, generated):
        trace, plan = generated
        assert served_batches(trace, plan) == plan.batches

    def test_multi_worker_is_an_interleaved_permutation(self):
        params = ServiceParams(n_clients=8, n_requests=120,
                               workers=3, quantum=2)
        plan = build_plan(params)
        workload = ServiceWorkload(params)
        workload.serve(plan)
        order = served_batches(workload.finish(), plan)
        assert sorted(b.index for b in order) == \
            list(range(len(plan.batches)))
        assert [b.index for b in order] != [b.index for b in plan.batches]
        # Within one worker slot, partition order is preserved.
        for slot in range(3):
            mine = [b.index for b in order if b.worker == slot]
            assert mine == sorted(mine)

    def test_mismatched_plan_is_an_error(self, generated):
        trace, plan = generated
        shorter = build_plan(ServiceParams(n_clients=8, n_requests=60))
        with pytest.raises(SimulationError):
            served_batches(trace, shorter)


class TestIsolation:
    @pytest.mark.parametrize("scheme", ["domain_virt", "mpk_virt"])
    def test_overread_faults_under_protection(self, scheme):
        params = ServiceParams(n_clients=4, n_requests=40)
        workload = ServiceWorkload(params)
        workload.serve(build_plan(params))
        workload.overread(victim=1)
        trace = workload.finish()
        with pytest.raises(ProtectionFault) as excinfo:
            replay_one(trace, scheme)
        assert excinfo.value.domain == workload.pools[1].domain

    def test_clean_trace_replays_without_fault(self, generated):
        trace, _plan = generated
        replay_one(trace, "domain_virt")
