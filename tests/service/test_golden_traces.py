"""Golden content-hash pins for service trace generation.

The hashes below were produced by the pre-streaming (PR 8) per-object
pipeline — ``Request`` dataclass loops in ``traffic.py``, the
``ServicePlan`` object walk in ``batching.py``, and per-event
``TraceRecorder`` appends in ``server.py``.  The streamed columnar
pipeline must reproduce every one of them byte for byte: same seeds →
same arrivals/clients/flags → same event columns → same layout → same
hash.  Because the engine's content-addressed trace cache keys traces by
params (``WorkloadSpec.content_hash``) and validates entries against the
stored columns, these pins are what guarantees pre-PR cache entries (and
any downstream golden numbers) survive the refactor.

The case matrix deliberately crosses every generation feature: both
arrival disciplines, all rate patterns, multi-worker round-robin
interleaving (including the quantum=1 edge where a thread's last turn
re-queues it just to die), revocation storms, shared read-only domains,
degenerate Zipf/write mixes, non-default seeds, multi-page requests that
page-fault at serve time, the slo_adaptive scheduling policy (object
plan path), an unbounded admission queue, and the keyed closed-loop
variant.
"""

import hashlib

import numpy as np
import pytest

from repro.service import ServiceParams, generate_service_trace
from repro.service.closed import generate_service_trace_keyed


def content_hash(trace):
    """Digest of everything replay consumes: columns, layout, icount."""
    cols = trace.columns
    h = hashlib.sha256()
    for arr, dt in ((cols.kinds, np.uint8), (cols.tids, np.uint32),
                    (cols.icounts, np.uint32),
                    (cols.operand_a, np.uint64),
                    (cols.operand_b, np.uint64)):
        h.update(np.ascontiguousarray(arr, dtype=dt).tobytes())
    h.update(repr(trace.layout.ptes).encode())
    h.update(str(trace.layout.n_threads).encode())
    h.update(str(trace.total_instructions).encode())
    return h.hexdigest()[:32]


# (params kwargs, pre-streaming hash, event count)
GOLDEN = {
    "open-poisson": (dict(n_clients=8, n_requests=150),
                     "54282a2cbd40e65c5017c5a340cd1c20", 1694),
    "open-burst": (dict(n_clients=8, n_requests=150, pattern="burst"),
                   "00de886da77232970f17421468095af1", 946),
    "open-diurnal": (dict(n_clients=8, n_requests=150, pattern="diurnal"),
                     "f3af092220b5d80b59420a7c49b5e269", 1682),
    "open-churn": (dict(n_clients=16, n_requests=200, pattern="churn"),
                   "611e0f29477408f37099c75914088de8", 2226),
    "open-waves": (dict(n_clients=16, n_requests=200, pattern="waves"),
                   "6981de5dcb4e7d36f83c6a2432049841", 1550),
    "closed-nominal": (dict(n_clients=6, n_requests=120, arrival="closed"),
                       "7074a63f922229db7991bebecf1cbe99", 1506),
    "closed-burst": (dict(n_clients=6, n_requests=120, arrival="closed",
                          pattern="burst"),
                     "7b09d7fc289db091e661db4337b3bde8", 1506),
    "workers4": (dict(n_clients=16, n_requests=200, workers=4),
                 "c37ae93f337c3fe15853892921dbb41c", 2601),
    "workers4-quantum1": (dict(n_clients=16, n_requests=200, workers=4,
                               quantum=1),
                          "52cfb7553c5507fb7f87c8bcef22cd93", 2752),
    "storms": (dict(n_clients=8, n_requests=150, revoke_every_batches=5,
                    revoke_fraction=0.5),
               "6f4755e7aa9f56356238d03f6d78e62b", 1742),
    "shared": (dict(n_clients=8, n_requests=150, shared_domains=3,
                    shared_words=4),
               "19d6f5da7b235367ac8e39395b24348c", 2300),
    "combined": (dict(n_clients=16, n_requests=200, workers=4,
                      revoke_every_batches=7, revoke_fraction=0.25,
                      shared_domains=2, shared_words=4, pattern="churn"),
                 "1b24ffc8189bc57592263ca2354f7dbf", 3523),
    "batching-none": (dict(n_clients=8, n_requests=150, batching="none"),
                      "1c829ba1cd1580fe52bdce39759fb9cf", 1874),
    "zipf0-writes": (dict(n_clients=8, n_requests=150, zipf=0.0,
                          read_fraction=0.0),
                     "af6ffbddf50e0c2e793c6b696b39f72c", 1944),
    "seed123": (dict(n_clients=8, n_requests=150, seed=123),
                "f03fd8c792eba3a98ac4fa3e7afc45dd", 1760),
    "multipage": (dict(n_clients=4, n_requests=60, read_words=700,
                       write_words=10, secret_size=8192,
                       pool_size=1 << 16),
                  "935452a589bcd7be293c71617496d68d", 42252),
    "slo-adaptive": (dict(n_clients=16, n_requests=300, workers=2,
                          pattern="churn", sched_policy="slo_adaptive",
                          slo_p99_cycles=20000.0, sched_epoch_batches=8),
                     "d297ea43682f90c50b451215e6cf6758", 3800),
    "unbounded": (dict(n_clients=8, n_requests=150, max_queue=0),
                  "54282a2cbd40e65c5017c5a340cd1c20", 1694),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_trace_hash_pinned(name):
    kwargs, want_hash, want_events = GOLDEN[name]
    trace, _ws = generate_service_trace(ServiceParams(**kwargs))
    assert len(trace) == want_events
    assert content_hash(trace) == want_hash


def test_keyed_closed_loop_hash_pinned():
    trace, _ws = generate_service_trace_keyed(
        ServiceParams(n_clients=6, n_requests=80, arrival="closed",
                      dispatch="replay"),
        "domain_virt")
    assert len(trace) == 1000
    assert content_hash(trace) == "de050bb853ebecada9324628dd23f758"


def test_unbounded_queue_matches_default_admission():
    """max_queue=0 only disables rejection; with none occurring the
    stream is identical (same hash as open-poisson above)."""
    assert GOLDEN["unbounded"][1] == GOLDEN["open-poisson"][1]
