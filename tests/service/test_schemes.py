"""The paper's claims at the serving level (the acceptance assertions).

One domain per client makes the client sweep a domain-count sweep, so at
64 clients the schemes must land in Table VII's order — and the serving
metrics must show domain virtualization beating MPK virtualization on
tail latency and throughput under client churn.
"""

import pytest

from repro.cpu.trace import PERM
from repro.engine import replay_one
from repro.errors import PkeyError
from repro.service import (ServiceParams, account, batch_boundaries,
                           build_plan, generate_service_trace)
from repro.sim.config import DEFAULT_CONFIG

PARAMS = ServiceParams(n_clients=64, n_requests=400)
SCHEMES = ("lowerbound", "domain_virt", "mpk_virt", "libmpk",
           "pks_seal", "dpti", "poe2")
FREQ = DEFAULT_CONFIG.processor.frequency_hz


@pytest.fixture(scope="module")
def summaries():
    trace, _ws = generate_service_trace(PARAMS)
    plan = build_plan(PARAMS)
    marks = batch_boundaries(trace)
    return {scheme: account(plan, trace,
                            replay_one(trace, scheme, marks=marks),
                            frequency_hz=FREQ)
            for scheme in SCHEMES}


class TestTableVIIOrdering:
    def test_cycles_order_at_64_clients(self, summaries):
        cycles = {name: summary.cycles
                  for name, summary in summaries.items()}
        assert cycles["lowerbound"] < cycles["domain_virt"] \
            < cycles["mpk_virt"] < cycles["libmpk"]

    def test_dv_beats_mpkv_on_serving_metrics(self, summaries):
        dv, mpkv = summaries["domain_virt"], summaries["mpk_virt"]
        assert dv.p99 < mpkv.p99
        assert dv.p95 < mpkv.p95
        assert dv.throughput_rps > mpkv.throughput_rps

    def test_mpk_hits_the_16_key_wall(self):
        trace, _ws = generate_service_trace(PARAMS)
        with pytest.raises(PkeyError):
            replay_one(trace, "mpk")

    def test_mpk_fits_within_16_clients(self):
        small = ServiceParams(n_clients=8, n_requests=80)
        trace, _ws = generate_service_trace(small)
        replay_one(trace, "mpk")  # must not raise


class TestLiteratureCompetitors:
    """The four descriptor-declared competitors at the serving level."""

    def test_erim_hits_the_same_wall_as_mpk(self):
        trace, _ws = generate_service_trace(PARAMS)
        with pytest.raises(PkeyError, match="ERIM 16-key limit"):
            replay_one(trace, "erim")

    def test_erim_fits_within_its_key_budget(self):
        small = ServiceParams(n_clients=16, n_requests=120)
        trace, _ws = generate_service_trace(small)
        stats = replay_one(trace, "erim")  # 16 clients: exactly at budget
        assert stats.evictions == 0  # direct mapping never virtualizes

    def test_sealing_spares_the_hot_keys(self, summaries):
        # Zipf churn concentrates on few clients; sealing pins them, so
        # pks_seal strictly out-serves plain MPK virtualization.
        assert summaries["pks_seal"].stats.evictions < \
            summaries["mpk_virt"].stats.evictions
        assert summaries["pks_seal"].cycles < summaries["mpk_virt"].cycles

    def test_poe2_overlays_absorb_all_64_clients(self, summaries):
        # 64 overlay registers = one per client: no churn at all, and
        # the cheap POR write undercuts virtualized WRPKRU.
        assert summaries["poe2"].stats.evictions == 0
        assert summaries["poe2"].cycles < summaries["mpk_virt"].cycles

    def test_dpti_trades_key_churn_for_cr3_switches(self, summaries):
        dpti = summaries["dpti"]
        assert dpti.stats.evictions == 0  # page tables, not keys
        assert dpti.stats.cross_core_shootdowns == 0
        # But every protection switch pays the CR3 write, which costs
        # more than DV's virtualized WRPKRU path end to end.
        assert dpti.cycles > summaries["domain_virt"].cycles


class TestBatchingEffect:
    @pytest.fixture(scope="class")
    def unbatched(self):
        import dataclasses
        params = dataclasses.replace(PARAMS, batching="none")
        trace, _ws = generate_service_trace(params)
        return params, trace

    def test_batching_strictly_reduces_permission_switches(self, summaries,
                                                           unbatched):
        _params, trace = unbatched
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        batched = summaries["domain_virt"]
        assert batched.perm_switches < stats.perm_switches
        # And the reduction is visible in the trace itself, before any
        # replay: fewer SETPERM events for the same offered load.
        assert batched.perm_switches == \
            2 * batched.n_batches  # one open + one close per window
        assert stats.perm_switches == \
            sum(1 for event in trace.events if event[0] == PERM)

    def test_batching_lowers_protection_overhead(self, summaries, unbatched):
        params, trace = unbatched
        plan = build_plan(params)
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        unbatched_summary = account(plan, trace, stats, frequency_hz=FREQ)
        # Same offered stream, fewer switches -> fewer busy cycles.
        assert summaries["domain_virt"].cycles < unbatched_summary.cycles


class TestDeterminism:
    def test_replay_is_reproducible(self):
        trace, _ws = generate_service_trace(PARAMS)
        marks = batch_boundaries(trace)
        first = replay_one(trace, "domain_virt", marks=marks)
        second = replay_one(trace, "domain_virt", marks=marks)
        assert first.cycles == second.cycles
        assert first.mark_cycles == second.mark_cycles
        assert first.buckets == second.buckets

    def test_end_to_end_summary_is_reproducible(self, summaries):
        trace, _ws = generate_service_trace(PARAMS)
        plan = build_plan(PARAMS)
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        again = account(plan, trace, stats, frequency_hz=FREQ)
        assert again.to_dict() == summaries["domain_virt"].to_dict()
