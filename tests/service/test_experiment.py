"""Engine integration and the service experiment driver."""

import pytest

from repro.engine import Engine, ReplayJob, TraceCache, WorkloadSpec
from repro.experiments.runner import ExperimentRunner
from repro.experiments.service import (SCHEME_ALIASES, report_service,
                                       resolve_scheme, run_service)
from repro.service import batch_boundaries, build_plan

TINY = dict(n_clients=8, n_requests=80)


@pytest.fixture
def engine(tmp_path):
    engine = Engine(cache=TraceCache(tmp_path / "traces"))
    yield engine
    TraceCache.clear_memory()


class TestWorkloadSpec:
    def test_service_suite_spec(self):
        spec = WorkloadSpec.service(**TINY)
        assert spec.suite == "service"
        assert spec.label == "service-8c-client"
        assert spec.params.n_clients == 8

    def test_scale_maps_to_request_budget(self):
        spec = WorkloadSpec.service(scale=0.5, **TINY)
        assert spec.params.n_requests == 40

    def test_cache_key_tracks_every_knob(self):
        base = WorkloadSpec.service(**TINY)
        assert base.cache_key() == WorkloadSpec.service(**TINY).cache_key()
        assert base.cache_key() != \
            WorkloadSpec.service(n_clients=8, n_requests=80,
                                 seed=99).cache_key()

    def test_marks_extend_the_job_hash_compatibly(self):
        spec = WorkloadSpec.service(**TINY)
        plain = ReplayJob(spec=spec, scheme="lowerbound")
        marked = ReplayJob(spec=spec, scheme="lowerbound", marks=(3, 7))
        assert plain.content_hash() != marked.content_hash()
        # marks=None must hash exactly like a pre-marks job, so existing
        # cached results stay addressable.
        assert plain.content_hash() == \
            ReplayJob(spec=spec, scheme="lowerbound",
                      marks=None).content_hash()


class TestEngineRoundTrip:
    def test_cached_trace_keeps_its_boundaries(self, engine):
        spec = WorkloadSpec.service(**TINY)
        marks = batch_boundaries(engine.trace_for(spec))
        engine.release(spec)
        reloaded = engine.trace_for(spec)  # disk round-trip
        assert engine.cache_stats.disk_hits == 1
        assert batch_boundaries(reloaded) == marks
        assert len(marks) == len(build_plan(spec.params).batches)

    def test_replay_marked_snapshots_every_scheme(self, engine):
        spec = WorkloadSpec.service(**TINY)
        marks = batch_boundaries(engine.trace_for(spec))
        cell = engine.replay_marked(spec, ("lowerbound", "domain_virt"),
                                    marks)
        assert set(cell) == {"baseline", "lowerbound", "domain_virt"}
        for stats in cell.values():
            assert len(stats.mark_cycles) == len(marks)
            assert stats.mark_cycles == sorted(stats.mark_cycles)
        assert cell["domain_virt"].baseline_cycles == \
            cell["baseline"].cycles


class TestDriver:
    def test_aliases_resolve(self):
        assert resolve_scheme("mpkv") == "mpk_virt"
        assert resolve_scheme("dv") == "domain_virt"
        assert resolve_scheme("pks") == "pks_seal"
        assert resolve_scheme("libmpk") == "libmpk"
        assert resolve_scheme("erim") == "erim"
        assert resolve_scheme("dpti") == "dpti"
        assert resolve_scheme("poe2") == "poe2"
        assert set(SCHEME_ALIASES) == {"mpkv", "dv", "pks"}

    def test_run_service_shape(self, engine):
        runner = ExperimentRunner(engine=engine)
        data = run_service(runner, clients=(4, 8), schemes=("dv", "mpkv"),
                           n_requests=60)
        assert list(data) == [4, 8]
        for per_scheme in data.values():
            assert list(per_scheme) == ["dv", "mpkv"]
            for summary in per_scheme.values():
                assert summary.n_served > 0
                assert summary.throughput_rps > 0

    def test_mpk_wall_reported_not_raised(self, engine):
        runner = ExperimentRunner(engine=engine)
        data = run_service(runner, clients=(20,), schemes=("mpk", "dv"),
                           n_requests=60)
        assert data[20]["mpk"] is None
        assert data[20]["dv"] is not None

    def test_report_renders_failure_row(self, engine):
        runner = ExperimentRunner(engine=engine)
        text = report_service(runner, clients=(20,), schemes=("mpk",),
                              n_requests=60)
        assert "FAIL (16-key limit)" in text

    def test_runs_are_deterministic(self, engine, tmp_path):
        first = run_service(ExperimentRunner(engine=engine),
                            clients=(8,), schemes=("dv",), n_requests=60)
        TraceCache.clear_memory()
        other = Engine(cache=TraceCache(tmp_path / "traces2"))
        second = run_service(ExperimentRunner(engine=other),
                             clients=(8,), schemes=("dv",), n_requests=60)
        assert first[8]["dv"].to_dict() == second[8]["dv"].to_dict()
