"""Model equivalence: array-backed TLB/cache vs the dict reference.

``ArrayTLBLevel``/``ArrayTwoLevelTLB`` and ``ArrayCacheLevel``/
``ArrayCacheHierarchy`` are drop-in replacements built for the fast
replay kernels; they must make the *same decisions* (hit/miss, victim
choice, invalidation counts) as the OrderedDict reference models on any
operation sequence.  These tests drive both models with identical
randomized sequences and diff every observable after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import (ArrayCacheHierarchy, ArrayCacheLevel,
                             CacheHierarchy, CacheLevel)
from repro.mem.tlb import (ArrayTLBLevel, ArrayTwoLevelTLB, TLBEntry,
                           TLBLevel, TwoLevelTLB)
from repro.permissions import Perm


def _entry(vpn, pkey=0, domain=0):
    return TLBEntry(vpn=vpn, pfn=vpn + 1000, perm=Perm.RW, pkey=pkey,
                    domain=domain)


# Operation encoding for the randomized driver: (op, operand) pairs on a
# deliberately tiny VPN space so sets collide and evictions happen.
_TLB_OPS = st.lists(
    st.tuples(st.sampled_from(["fill", "lookup", "invalidate",
                               "inv_domain", "inv_pkey", "inv_range",
                               "inv_all"]),
              st.integers(min_value=0, max_value=40)),
    max_size=120)


class TestArrayTLBLevelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=_TLB_OPS)
    def test_matches_reference(self, ops):
        ref = TLBLevel(16, 4)
        arr = ArrayTLBLevel(16, 4)
        for op, x in ops:
            if op == "fill":
                e = _entry(x, pkey=x % 5, domain=x % 3)
                assert ref.fill(e) == arr.fill(e)
            elif op == "lookup":
                assert ref.lookup(x) == arr.lookup(x)
            elif op == "invalidate":
                assert ref.invalidate(x) == arr.invalidate(x)
            elif op == "inv_domain":
                assert ref.invalidate_domain(x % 3) == \
                    arr.invalidate_domain(x % 3)
            elif op == "inv_pkey":
                assert ref.invalidate_pkey(x % 5) == \
                    arr.invalidate_pkey(x % 5)
            elif op == "inv_range":
                assert ref.invalidate_range(x, 8) == \
                    arr.invalidate_range(x, 8)
            else:
                assert ref.invalidate_all() == arr.invalidate_all()
            assert ref.hits == arr.hits
            assert ref.misses == arr.misses
            assert len(ref) == len(arr)
        assert sorted(e.vpn for e in ref) == sorted(e.vpn for e in arr)

    def test_lru_victim_matches_after_touch(self):
        ref = TLBLevel(4, 4)
        arr = ArrayTLBLevel(4, 4)
        for vpn in range(4):
            ref.fill(_entry(vpn))
            arr.fill(_entry(vpn))
        ref.lookup(0)
        arr.lookup(0)
        assert ref.fill(_entry(99)).vpn == arr.fill(_entry(99)).vpn == 1

    def test_refill_existing_vpn_updates_in_place(self):
        ref = TLBLevel(4, 4)
        arr = ArrayTLBLevel(4, 4)
        for level in (ref, arr):
            assert level.fill(_entry(1, pkey=2)) is None
            assert level.fill(_entry(1, pkey=7)) is None
            assert level.lookup(1).pkey == 7
            assert len(level) == 1


class TestArrayTwoLevelEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["access", "flush_domain", "flush_all"]),
                  st.integers(min_value=0, max_value=60)),
        max_size=150))
    def test_matches_reference(self, ops):
        ref = TwoLevelTLB(l1_entries=8, l1_ways=4, l2_entries=24,
                          l2_ways=6)
        arr = ArrayTwoLevelTLB(l1_entries=8, l1_ways=4, l2_entries=24,
                               l2_ways=6)
        for op, x in ops:
            if op == "access":
                re, rl = ref.lookup(x)
                ae, al = arr.lookup(x)
                assert (re, rl) == (ae, al)
                if re is None:
                    e = _entry(x, domain=x % 4)
                    ref.fill(e)
                    arr.fill(e)
            elif op == "flush_domain":
                assert ref.domain_flush(x % 4) == arr.domain_flush(x % 4)
            else:
                assert ref.invalidate_all() == arr.invalidate_all()
            assert ref.hits == arr.hits
            assert ref.misses == arr.misses
            assert (ref.l1.hits, ref.l2.hits) == (arr.l1.hits, arr.l2.hits)


class TestArrayCacheEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(st.integers(min_value=0, max_value=64),
                          max_size=200))
    def test_level_matches_reference(self, lines):
        ref = CacheLevel(8 * 64, 4, latency=1)
        arr = ArrayCacheLevel(8 * 64, 4, latency=1)
        for line in lines:
            assert ref.lookup(line) == arr.lookup(line)
            assert ref.fill(line) == arr.fill(line)
            assert ref.hits == arr.hits
            assert ref.misses == arr.misses
            assert len(ref) == len(arr)

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16),
                          max_size=200),
           mem_latency=st.sampled_from([120, 360]))
    def test_hierarchy_matches_reference(self, addrs, mem_latency):
        geometry = dict(l1_size=8 * 64, l1_ways=4, l1_latency=1,
                        l2_size=32 * 64, l2_ways=8, l2_latency=8)
        ref = CacheHierarchy(**geometry)
        arr = ArrayCacheHierarchy(**geometry)
        for addr in addrs:
            assert ref.access(addr, mem_latency) == \
                arr.access(addr, mem_latency)
        assert (ref.l1.hits, ref.l1.misses) == (arr.l1.hits, arr.l1.misses)
        assert (ref.l2.hits, ref.l2.misses) == (arr.l2.hits, arr.l2.misses)
        assert ref.mem_accesses == arr.mem_accesses
