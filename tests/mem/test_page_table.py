"""Tests for the 4-level page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFault
from repro.permissions import Perm
from repro.mem.page_table import PTE, PageTable, vpn_of


def pte(pfn=1, perm=Perm.RW, pkey=0, domain=0):
    return PTE(pfn=pfn, perm=perm, pkey=pkey, domain=domain)


class TestMapping:
    def test_map_then_get(self):
        pt = PageTable()
        pt.map_page(0x12345, pte(pfn=7))
        assert pt.get(0x12345).pfn == 7

    def test_get_unmapped_is_none(self):
        assert PageTable().get(1) is None

    def test_walk_unmapped_faults(self):
        with pytest.raises(PageFault):
            PageTable().walk(0x99)

    def test_walk_counts(self):
        pt = PageTable()
        pt.map_page(5, pte())
        pt.walk(5)
        pt.walk(5)
        assert pt.walk_count == 2

    def test_unmap(self):
        pt = PageTable()
        pt.map_page(5, pte())
        pt.unmap_page(5)
        assert pt.get(5) is None
        with pytest.raises(PageFault):
            pt.walk(5)

    def test_unmap_unmapped_is_noop(self):
        PageTable().unmap_page(12345)

    def test_mapped_pages_counter(self):
        pt = PageTable()
        for vpn in range(10):
            pt.map_page(vpn, pte())
        pt.unmap_page(3)
        assert pt.mapped_pages == 9

    def test_vpn_of(self):
        assert vpn_of(0x1000) == 1
        assert vpn_of(0x1FFF) == 1
        assert vpn_of(0x2000) == 2

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 2**36 - 1), min_size=1, max_size=50))
    def test_radix_and_flat_agree(self, vpns):
        """The radix walk and the flat index always return the same PTE."""
        pt = PageTable()
        for i, vpn in enumerate(sorted(vpns)):
            pt.map_page(vpn, pte(pfn=i))
        for vpn in vpns:
            assert pt.walk(vpn) is pt.get(vpn)


class TestPkeyRewrites:
    def test_set_pkey_range_counts_mapped_only(self):
        pt = PageTable()
        for vpn in (10, 12, 14):
            pt.map_page(vpn, pte())
        assert pt.set_pkey_range(10, 5, 3) == 3
        assert pt.get(10).pkey == 3
        assert pt.get(14).pkey == 3

    def test_set_pkey_for_domain(self):
        pt = PageTable()
        for vpn in range(6):
            pt.map_page(vpn, pte(domain=1 + vpn % 2))
        assert pt.set_pkey_for_domain(1, 9) == 3
        assert pt.get(0).pkey == 9
        assert pt.get(1).pkey == 0

    def test_set_pkey_for_unknown_domain(self):
        assert PageTable().set_pkey_for_domain(99, 1) == 0

    def test_mapped_pages_of_domain(self):
        pt = PageTable()
        for vpn in range(4):
            pt.map_page(vpn, pte(domain=7))
        assert pt.mapped_pages_of_domain(7) == 4
        pt.unmap_page(0)
        assert pt.mapped_pages_of_domain(7) == 3

    def test_set_domain_range_moves_index(self):
        pt = PageTable()
        pt.map_page(0, pte(domain=1))
        pt.set_domain_range(0, 1, 2)
        assert pt.mapped_pages_of_domain(1) == 0
        assert pt.mapped_pages_of_domain(2) == 1
