"""Tests for the DRAM/NVM physical memory model."""

import pytest

from repro.errors import SimulationError
from repro.mem.memory import NVM_FRAME_BASE, PhysicalMemory


class TestFrameAllocation:
    def test_dram_frames_below_nvm_base(self):
        phys = PhysicalMemory()
        assert phys.alloc_dram_frame() < NVM_FRAME_BASE

    def test_nvm_frames_at_or_above_base(self):
        phys = PhysicalMemory()
        assert phys.alloc_nvm_frame() >= NVM_FRAME_BASE

    def test_frames_are_unique(self):
        phys = PhysicalMemory()
        frames = {phys.alloc_dram_frame() for _ in range(100)}
        frames |= {phys.alloc_nvm_frame() for _ in range(100)}
        assert len(frames) == 200

    def test_exhaustion(self):
        phys = PhysicalMemory(dram_frames=2)
        phys.alloc_dram_frame()
        phys.alloc_dram_frame()
        with pytest.raises(SimulationError):
            phys.alloc_dram_frame()

    def test_allocation_counters(self):
        phys = PhysicalMemory()
        phys.alloc_dram_frame()
        phys.alloc_nvm_frame()
        phys.alloc_nvm_frame()
        assert phys.dram_frames_allocated == 1
        assert phys.nvm_frames_allocated == 2


class TestLatency:
    def test_nvm_is_3x_dram_by_default(self):
        phys = PhysicalMemory()
        dram = phys.latency_for_frame(phys.alloc_dram_frame())
        nvm = phys.latency_for_frame(phys.alloc_nvm_frame())
        assert dram == 120
        assert nvm == 360

    def test_custom_latencies(self):
        phys = PhysicalMemory(dram_latency=100, nvm_latency=500)
        assert phys.latency_for_frame(phys.alloc_nvm_frame()) == 500

    def test_is_nvm_frame(self):
        assert PhysicalMemory.is_nvm_frame(NVM_FRAME_BASE)
        assert not PhysicalMemory.is_nvm_frame(NVM_FRAME_BASE - 1)
