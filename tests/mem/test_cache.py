"""Tests for the cache hierarchy."""

import pytest

from repro.mem.cache import LINE_SIZE, CacheHierarchy, CacheLevel


class TestCacheLevel:
    def test_miss_then_hit(self):
        cache = CacheLevel(1 << 10, 4, latency=1)
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)

    def test_line_count_must_divide(self):
        with pytest.raises(ValueError):
            CacheLevel(64 * 5, 4, latency=1)

    def test_lru_within_set(self):
        cache = CacheLevel(4 * LINE_SIZE, 4, latency=1)  # one set
        for line in range(4):
            cache.fill(line)
        cache.lookup(0)
        victim = cache.fill(77)
        assert victim == 1

    def test_capacity(self):
        cache = CacheLevel(1 << 10, 4, latency=1)  # 16 lines
        for line in range(100):
            cache.fill(line)
        assert len(cache) <= 16

    def test_invalidate_all(self):
        cache = CacheLevel(1 << 10, 4, latency=1)
        cache.fill(1)
        cache.invalidate_all()
        assert not cache.lookup(1)


class TestCacheHierarchy:
    def make(self):
        return CacheHierarchy(l1_size=1 << 10, l1_ways=4, l1_latency=1,
                              l2_size=1 << 14, l2_ways=4, l2_latency=8)

    def test_cold_miss_pays_memory_latency(self):
        caches = self.make()
        assert caches.access(0x1000, 360) == 1 + 8 + 360

    def test_second_access_is_l1_hit(self):
        caches = self.make()
        caches.access(0x1000, 360)
        assert caches.access(0x1000, 360) == 1

    def test_same_line_shares_hit(self):
        caches = self.make()
        caches.access(0x1000, 120)
        assert caches.access(0x1000 + LINE_SIZE - 1, 120) == 1

    def test_l2_hit_after_l1_eviction(self):
        caches = self.make()
        caches.access(0x0, 120)
        # Evict line 0 from tiny L1 with 4 conflicting lines (same L1 set,
        # different L2 sets is fine: L2 is bigger).
        n_l1_sets = caches.l1.n_sets
        for i in range(1, 5):
            caches.access(i * n_l1_sets * LINE_SIZE, 120)
        latency = caches.access(0x0, 120)
        assert latency == 1 + 8  # L2 hit

    def test_memory_access_counter(self):
        caches = self.make()
        caches.access(0x0, 120)
        caches.access(0x0, 120)
        caches.access(0x40000, 120)
        assert caches.mem_accesses == 2

    def test_dram_vs_nvm_latency_passthrough(self):
        caches = self.make()
        dram = caches.access(0x10000, 120)
        nvm = caches.access(0x20000, 360)
        assert nvm - dram == 240
