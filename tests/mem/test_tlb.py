"""Tests for the two-level TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.permissions import Perm
from repro.mem.tlb import TLBEntry, TLBLevel, TwoLevelTLB


def entry(vpn, pkey=0, domain=0, perm=Perm.RW):
    return TLBEntry(vpn=vpn, pfn=vpn + 1000, perm=perm, pkey=pkey,
                    domain=domain)


class TestTLBLevel:
    def test_miss_then_hit(self):
        tlb = TLBLevel(64, 4)
        assert tlb.lookup(5) is None
        tlb.fill(entry(5))
        assert tlb.lookup(5).pfn == 1005
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_entries_must_divide_into_ways(self):
        with pytest.raises(ValueError):
            TLBLevel(63, 4)

    def test_lru_eviction_within_set(self):
        tlb = TLBLevel(4, 4)  # one set
        for vpn in range(4):
            tlb.fill(entry(vpn))
        tlb.lookup(0)  # 0 becomes MRU; 1 is now LRU
        victim = tlb.fill(entry(99))
        assert victim.vpn == 1

    def test_fill_existing_vpn_replaces_without_eviction(self):
        tlb = TLBLevel(4, 4)
        tlb.fill(entry(1, pkey=2))
        victim = tlb.fill(entry(1, pkey=7))
        assert victim is None
        assert tlb.lookup(1).pkey == 7

    def test_capacity_bounded(self):
        tlb = TLBLevel(64, 4)
        for vpn in range(1000):
            tlb.fill(entry(vpn))
        assert len(tlb) <= 64

    def test_invalidate_single(self):
        tlb = TLBLevel(64, 4)
        tlb.fill(entry(3))
        assert tlb.invalidate(3)
        assert not tlb.invalidate(3)
        assert tlb.lookup(3) is None

    def test_invalidate_all(self):
        tlb = TLBLevel(64, 4)
        for vpn in range(10):
            tlb.fill(entry(vpn))
        assert tlb.invalidate_all() == 10
        assert len(tlb) == 0

    def test_invalidate_range(self):
        tlb = TLBLevel(64, 4)
        for vpn in range(20):
            tlb.fill(entry(vpn))
        killed = tlb.invalidate_range(5, 10)
        assert killed == 10
        assert tlb.peek(4) is not None
        assert tlb.peek(5) is None
        assert tlb.peek(14) is None
        assert tlb.peek(15) is not None

    def test_invalidate_domain(self):
        tlb = TLBLevel(64, 4)
        for vpn in range(12):
            tlb.fill(entry(vpn, domain=vpn % 3))
        killed = tlb.invalidate_domain(1)
        assert killed == 4
        assert all(e.domain != 1 for e in tlb)

    def test_invalidate_domain_twice_is_zero(self):
        tlb = TLBLevel(64, 4)
        tlb.fill(entry(1, domain=5))
        assert tlb.invalidate_domain(5) == 1
        assert tlb.invalidate_domain(5) == 0

    def test_invalidate_pkey(self):
        tlb = TLBLevel(64, 4)
        for vpn in range(10):
            tlb.fill(entry(vpn, pkey=vpn % 2, domain=1 + vpn % 2))
        assert tlb.invalidate_pkey(1) == 5

    def test_domain_index_survives_lru_eviction(self):
        tlb = TLBLevel(4, 4)
        for vpn in range(4):
            tlb.fill(entry(vpn, domain=9))
        tlb.fill(entry(50, domain=9))  # evicts vpn 0
        # Flushing the domain must count only live entries.
        assert tlb.invalidate_domain(9) == 4

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=200))
    def test_domain_index_matches_contents(self, vpns):
        """After arbitrary fills, flush-by-domain kills exactly the
        entries whose domain matches."""
        tlb = TLBLevel(16, 4)
        for vpn in vpns:
            tlb.fill(entry(vpn, domain=vpn % 5))
        expected = sum(1 for e in tlb if e.domain == 2)
        assert tlb.invalidate_domain(2) == expected
        assert all(e.domain != 2 for e in tlb)


class TestTwoLevelTLB:
    def test_l2_hit_promotes_to_l1(self):
        tlb = TwoLevelTLB(l1_entries=4, l1_ways=4,
                          l2_entries=64, l2_ways=4)
        tlb.fill(entry(1))
        # Push vpn 1 out of tiny L1 with conflicting fills.
        for vpn in range(2, 10):
            tlb.fill(entry(vpn))
        got, level = tlb.lookup(1)
        assert got is not None
        assert level == "l2"
        got, level = tlb.lookup(1)
        assert level == "l1"

    def test_full_miss(self):
        tlb = TwoLevelTLB()
        got, level = tlb.lookup(42)
        assert got is None
        assert level == "miss"

    def test_domain_flush_covers_both_levels(self):
        tlb = TwoLevelTLB(l1_entries=4, l1_ways=4,
                          l2_entries=64, l2_ways=4)
        for vpn in range(8):
            tlb.fill(entry(vpn, domain=3))
        killed = tlb.domain_flush(3)
        assert killed >= 8  # both levels contribute
        assert tlb.lookup(0)[1] == "miss"

    def test_miss_counting(self):
        tlb = TwoLevelTLB()
        tlb.lookup(7)
        tlb.fill(entry(7))
        tlb.lookup(7)
        assert tlb.misses == 1
        assert tlb.hits >= 1
