"""Parallel-replay tests: REPRO_JOBS fan-out must not change results."""

import pytest

from repro.engine import TraceCache, parallel_map, worker_count
from repro.engine.executor import _fork_available
from repro.experiments.figure6 import FIGURE6_SCHEMES, run_figure6
from repro.experiments.runner import ExperimentRunner
from repro.sim.simulator import MULTI_PMO_SCHEMES


class TestWorkerCount:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert worker_count() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert worker_count() == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert worker_count(2) == 2

    def test_garbage_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert worker_count() == 1
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert worker_count() == 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(lambda x: x * x, [1, 2, 3], jobs=1) == [1, 4, 9]

    @pytest.mark.skipif(not _fork_available(), reason="requires fork")
    def test_parallel_path_preserves_order(self):
        assert parallel_map(_square, list(range(8)), jobs=4) == \
            [x * x for x in range(8)]


def _square(x):
    return x * x


@pytest.mark.skipif(not _fork_available(), reason="requires fork")
class TestParallelReplayEquivalence:
    """Acceptance criterion: with REPRO_JOBS > 1, per-scheme RunStats
    match the serial replay exactly."""

    def test_figure6_point_bitwise_identical(self, monkeypatch, tmp_path):
        def run(jobs):
            monkeypatch.setenv("REPRO_JOBS", str(jobs))
            monkeypatch.setenv("REPRO_TRACE_CACHE",
                               str(tmp_path / f"cache-{jobs}"))
            TraceCache.clear_memory()
            runner = ExperimentRunner(scale=0.02)
            return runner.replay_micro("avl", 16, MULTI_PMO_SCHEMES)

        serial = run(1)
        parallel = run(4)
        assert serial.keys() == parallel.keys()
        for scheme in serial:
            assert serial[scheme].to_dict() == parallel[scheme].to_dict(), \
                scheme
        # The figure's derived quantities follow: identical cycles give
        # identical overhead percentages.
        for scheme in ("libmpk", "mpk_virt", "domain_virt"):
            assert serial[scheme].cycles == parallel[scheme].cycles

    def test_figure6_sweep_identical(self, monkeypatch, tmp_path):
        def run(jobs):
            monkeypatch.setenv("REPRO_JOBS", str(jobs))
            monkeypatch.setenv("REPRO_TRACE_CACHE",
                               str(tmp_path / f"sweep-{jobs}"))
            TraceCache.clear_memory()
            runner = ExperimentRunner(scale=0.02)
            return run_figure6(runner, benchmarks=("ll",), points=(16, 32))

        serial = run(1)
        parallel = run(4)
        for scheme in FIGURE6_SCHEMES:
            assert serial["ll"][scheme] == parallel["ll"][scheme]
