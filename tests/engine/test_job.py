"""Job-model tests: spec/job identity, hashing, and generation dispatch."""

import dataclasses
import pickle

import pytest

from repro.engine import ReplayJob, WorkloadSpec
from repro.errors import EngineError
from repro.sim.config import DEFAULT_CONFIG
from repro.workloads.micro import MicroParams


class TestWorkloadSpec:
    def test_micro_spec_applies_scale(self):
        spec = WorkloadSpec.micro("avl", 16, scale=0.5)
        full = WorkloadSpec.micro("avl", 16)
        assert spec.params.operations < full.params.operations

    def test_cache_key_is_stable(self):
        a = WorkloadSpec.micro("avl", 16, operations=100)
        b = WorkloadSpec.micro("avl", 16, operations=100)
        assert a.cache_key() == b.cache_key()

    def test_cache_key_covers_every_param(self):
        base = WorkloadSpec.micro("avl", 16, operations=100)
        assert base.cache_key() != \
            WorkloadSpec.micro("avl", 32, operations=100).cache_key()
        assert base.cache_key() != \
            WorkloadSpec.micro("avl", 16, operations=101).cache_key()
        assert base.cache_key() != \
            WorkloadSpec.micro("rbt", 16, operations=100).cache_key()
        assert base.cache_key() != \
            WorkloadSpec.micro("avl", 16, operations=100, seed=8).cache_key()

    def test_cache_key_covers_scale(self):
        # REPRO_OPS feeds in through the scale factor; a scaled run must
        # never alias the full-size trace.
        assert WorkloadSpec.micro("avl", 16).cache_key() != \
            WorkloadSpec.micro("avl", 16, scale=0.5).cache_key()

    def test_cache_key_covers_format_version(self, monkeypatch):
        import repro.cpu.tracefile as tracefile
        spec = WorkloadSpec.micro("avl", 16)
        before = spec.cache_key()
        monkeypatch.setattr(tracefile, "FORMAT_VERSION", 999)
        assert spec.cache_key() != before

    def test_whisper_and_micro_never_collide(self):
        # Different suites hash over different param sets anyway, but the
        # suite name itself is part of the identity document.
        micro = WorkloadSpec.micro("echo", 16)
        whisper = WorkloadSpec.whisper("echo")
        assert micro.cache_key() != whisper.cache_key()

    def test_generate_dispatches_micro(self):
        trace, ws = WorkloadSpec.micro("ll", 8, operations=40,
                                       initial_nodes=10).generate()
        assert len(trace) > 0
        assert trace.layout is not None

    def test_generate_rejects_unknown_suite(self):
        spec = WorkloadSpec(suite="macro", params=MicroParams(benchmark="avl"))
        with pytest.raises(EngineError):
            spec.generate()


class TestReplayJob:
    def test_job_is_picklable(self):
        job = ReplayJob(spec=WorkloadSpec.micro("avl", 16),
                        scheme="domain_virt")
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.content_hash() == job.content_hash()

    def test_content_hash_covers_scheme_and_config(self):
        spec = WorkloadSpec.micro("avl", 16)
        base = ReplayJob(spec=spec, scheme="mpk_virt")
        assert base.content_hash() != \
            ReplayJob(spec=spec, scheme="libmpk").content_hash()
        slow = DEFAULT_CONFIG.with_overrides(
            memory=dataclasses.replace(DEFAULT_CONFIG.memory,
                                       nvm_latency=999))
        assert base.content_hash() != \
            ReplayJob(spec=spec, scheme="mpk_virt",
                      config=slow).content_hash()

    def test_cache_root_is_placement_not_identity(self):
        spec = WorkloadSpec.micro("avl", 16)
        a = ReplayJob(spec=spec, scheme="mpk_virt", cache_root="/tmp/a")
        b = ReplayJob(spec=spec, scheme="mpk_virt", cache_root="/tmp/b")
        assert a.content_hash() == b.content_hash()
