"""Replay-context tests: reconstruction fidelity and scheme isolation."""

import pytest

from repro.engine import ReplayContext, replay_one
from repro.errors import EngineError
from repro.mem.memory import NVM_FRAME_BASE
from repro.sim.simulator import MULTI_PMO_SCHEMES, _replay_shared
from repro.sim.config import DEFAULT_CONFIG
from repro.cpu.trace import Trace
from repro.workloads.micro import MicroParams, generate_micro_trace

TINY = dict(n_pools=12, operations=150, initial_nodes=16, pool_size=1 << 20)


@pytest.fixture(scope="module")
def generated():
    return generate_micro_trace(MicroParams(benchmark="avl", **TINY))


class TestReconstruction:
    def test_requires_layout(self):
        bare = Trace(events=[], attach_info={}, total_instructions=0,
                     label="bare")
        with pytest.raises(EngineError):
            ReplayContext.from_trace(bare)

    def test_rebuilds_address_space(self, generated):
        trace, ws = generated
        ctx = ReplayContext.from_trace(trace)
        original = {vma.base: vma for vma in ws.process.address_space.vmas()}
        rebuilt = {vma.base: vma for vma in
                   ctx.process.address_space.vmas()}
        assert rebuilt.keys() == original.keys()
        for base, vma in original.items():
            copy = rebuilt[base]
            assert copy is not vma  # private objects
            assert (copy.size, copy.pmo_id, copy.is_nvm) == \
                (vma.size, vma.pmo_id, vma.is_nvm)

    def test_rebuilds_page_table_verbatim(self, generated):
        trace, ws = generated
        ctx = ReplayContext.from_trace(trace)
        original = list(ws.process.page_table.entries())
        rebuilt = list(ctx.process.page_table.entries())
        assert len(rebuilt) == len(original)
        # Same vpn -> pfn/perm/domain mapping, in the same fault order
        # (insertion order drives libmpk's rewrite accounting).
        for (vpn_a, pte_a), (vpn_b, pte_b) in zip(original, rebuilt):
            assert vpn_a == vpn_b
            assert (pte_a.pfn, pte_a.perm, pte_a.domain) == \
                (pte_b.pfn, pte_b.perm, pte_b.domain)

    def test_frame_allocators_advanced(self, generated):
        trace, _ = generated
        ctx = ReplayContext.from_trace(trace)
        pfns = [pfn for _, pfn, _, _, _ in trace.layout.ptes]
        nvm = [pfn for pfn in pfns if pfn >= NVM_FRAME_BASE]
        fresh = ctx.kernel.physical_memory.alloc_nvm_frame()
        assert fresh not in nvm  # no collision with snapshot frames

    def test_attachments_restored(self, generated):
        trace, ws = generated
        ctx = ReplayContext.from_trace(trace)
        assert ctx.process.attachments.keys() == \
            ws.process.attachments.keys()
        for domain, (vma, intent) in ctx.attach_info.items():
            assert vma is not trace.attach_info[domain][0]

    def test_threads_restored(self, generated):
        trace, ws = generated
        ctx = ReplayContext.from_trace(trace)
        assert len(ctx.process.threads) == len(ws.process.threads)


class TestIsolation:
    def test_fresh_context_matches_shared_workspace(self):
        """The enabling refactor's contract: context replay must be
        bit-identical to the historical shared-workspace replay."""
        params = MicroParams(benchmark="rbt", **TINY)
        t_shared, ws = generate_micro_trace(params)
        t_fresh, _ = generate_micro_trace(params)
        shared = _replay_shared(t_shared, ws, list(MULTI_PMO_SCHEMES),
                                DEFAULT_CONFIG, True)
        for name, stats in shared.items():
            fresh = replay_one(t_fresh, name)
            # baseline_cycles is wiring done by the caller, not a replay
            # result; compare the raw replays over the same denominator.
            base = stats.baseline_cycles or shared["baseline"].cycles
            assert fresh.to_dict(baseline=base) == \
                stats.to_dict(baseline=base), name

    def test_replay_order_is_irrelevant(self, generated):
        trace, _ = generated
        forward = [replay_one(trace, s).cycles for s in MULTI_PMO_SCHEMES]
        backward = [replay_one(trace, s).cycles
                    for s in reversed(MULTI_PMO_SCHEMES)]
        assert forward == list(reversed(backward))

    def test_repeated_replays_identical(self, generated):
        trace, _ = generated
        first = replay_one(trace, "libmpk")
        second = replay_one(trace, "libmpk")
        assert first.to_dict() == second.to_dict()

    def test_replay_does_not_mutate_trace(self, generated):
        trace, _ = generated
        pkeys_before = [pkey for _, _, _, pkey, _ in trace.layout.ptes]
        attach_pkeys = {d: vma.pkey
                        for d, (vma, _) in trace.attach_info.items()}
        replay_one(trace, "libmpk")  # libmpk rewrites pkeys aggressively
        assert [pkey for _, _, _, pkey, _ in trace.layout.ptes] == \
            pkeys_before
        assert {d: vma.pkey for d, (vma, _)
                in trace.attach_info.items()} == attach_pkeys
