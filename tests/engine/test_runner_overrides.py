"""Runner override handling: overrides are cache identity, not bypasses."""

import pytest

from repro.engine import Engine, TraceCache
from repro.experiments.runner import ExperimentRunner


@pytest.fixture
def runner(tmp_path):
    engine = Engine(cache=TraceCache(tmp_path / "traces"))
    yield ExperimentRunner(scale=0.02, engine=engine)
    TraceCache.clear_memory()


class TestOverrideCaching:
    def test_overridden_micro_trace_is_cached(self, runner):
        t1, _ = runner.micro_trace("ll", 8, operations=900)
        t2, _ = runner.micro_trace("ll", 8, operations=900)
        assert t1 is t2
        assert runner.engine.trace_generations == 1

    def test_override_gets_its_own_cache_slot(self, runner):
        plain, _ = runner.micro_trace("ll", 8)
        overridden, _ = runner.micro_trace("ll", 8, operations=900)
        assert overridden is not plain
        assert runner.engine.trace_generations == 2
        # And the plain trace was not evicted or replaced.
        again, _ = runner.micro_trace("ll", 8)
        assert again is plain

    def test_distinct_overrides_distinct_slots(self, runner):
        a, _ = runner.micro_trace("ll", 8, operations=900)
        b, _ = runner.micro_trace("ll", 8, operations=1800)
        assert a is not b

    def test_overridden_whisper_trace_is_cached(self, runner):
        t1, _ = runner.whisper_trace("echo", transactions=700)
        t2, _ = runner.whisper_trace("echo", transactions=700)
        assert t1 is t2
        assert runner.engine.trace_generations == 1

    def test_spec_identity_returned(self, runner):
        _, spec = runner.micro_trace("ll", 8, operations=900)
        assert spec.params.operations == int(900 * runner.scale)
