"""Tests for the ``REPRO_PROFILE`` per-job profiling knob."""

import pstats

import pytest

from repro import obs
from repro.engine.executor import _run_job, profile_dir
from repro.engine.job import ReplayJob, WorkloadSpec


def _job():
    return ReplayJob(
        spec=WorkloadSpec.micro("rbt", 2, initial_nodes=8, operations=20),
        scheme="baseline", cache_root="0")


class TestKnobParsing:
    @pytest.mark.parametrize("raw", ["", "0", "false", "off", "no"])
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert profile_dir() is None

    @pytest.mark.parametrize("raw", ["1", "true", "on", "yes"])
    def test_truthy_uses_default_dir(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert profile_dir().name == "profiles"

    def test_path_value_names_the_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", str(tmp_path / "pp"))
        assert profile_dir() == tmp_path / "pp"


class TestProfileDump:
    def test_job_dumps_readable_pstats(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        stats = _run_job(_job())
        assert stats.instructions > 0
        dumps = list(tmp_path.glob("micro-rbt-2-baseline-*.pstats"))
        assert len(dumps) == 1
        assert len(pstats.Stats(str(dumps[0])).stats) > 0

    def test_profile_path_announced_via_event(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        monkeypatch.setenv("REPRO_EVENTS", "ring")
        obs.reset()
        try:
            _run_job(_job())
            records = [r for r in obs.active_events().records()
                       if r["kind"] == "job.profile"]
        finally:
            monkeypatch.delenv("REPRO_EVENTS")
            obs.reset()
        assert len(records) == 1
        record = records[0]
        assert record["label"] == "micro-rbt-2"
        assert record["scheme"] == "baseline"
        assert (tmp_path / record["path"].rsplit("/", 1)[-1]).exists()

    def test_results_unchanged_by_profiling(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        plain = _run_job(_job())
        monkeypatch.setenv("REPRO_PROFILE", str(tmp_path))
        profiled = _run_job(_job())
        assert repr(plain.cycles) == repr(profiled.cycles)
        assert plain.buckets == profiled.buckets
