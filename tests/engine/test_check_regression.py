"""Tests for the CI throughput-regression gate."""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).parents[2] / "benchmarks" /
           "check_regression.py")
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _bench_json(tmp_path, name, results):
    path = tmp_path / name
    path.write_text(json.dumps({"params": {}, "results": results}))
    return path


def _entry(events_per_s):
    return {"events": 1000, "mean_s": 0.1, "min_s": 0.09,
            "events_per_s": events_per_s}


class TestCompare:
    def test_equal_results_pass(self):
        results = {"replay:baseline": _entry(500_000.0)}
        assert check_regression.compare(results, results, 0.30) == []

    def test_improvement_passes(self):
        base = {"replay:baseline": _entry(500_000.0)}
        cur = {"replay:baseline": _entry(2_000_000.0)}
        assert check_regression.compare(base, cur, 0.30) == []

    def test_small_drop_within_threshold_passes(self):
        base = {"replay:baseline": _entry(500_000.0)}
        cur = {"replay:baseline": _entry(400_000.0)}  # -20%
        assert check_regression.compare(base, cur, 0.30) == []

    def test_large_drop_fails(self):
        base = {"replay:baseline": _entry(500_000.0)}
        cur = {"replay:baseline": _entry(300_000.0)}  # -40%
        failures = check_regression.compare(base, cur, 0.30)
        assert len(failures) == 1
        assert "replay:baseline" in failures[0]

    def test_missing_benchmark_fails(self):
        base = {"replay:baseline": _entry(500_000.0),
                "generate:micro-rbt": _entry(50_000.0)}
        cur = {"replay:baseline": _entry(500_000.0)}
        failures = check_regression.compare(base, cur, 0.30)
        assert len(failures) == 1
        assert "generate:micro-rbt" in failures[0]

    def test_new_benchmark_not_gated(self):
        base = {"replay:baseline": _entry(500_000.0)}
        cur = {"replay:baseline": _entry(500_000.0),
               "replay:new_scheme": _entry(10.0)}
        assert check_regression.compare(base, cur, 0.30) == []

    def test_null_current_throughput_fails(self):
        base = {"replay:baseline": _entry(500_000.0)}
        cur = {"replay:baseline": {"events": 1000, "mean_s": None,
                                   "min_s": None, "events_per_s": None}}
        failures = check_regression.compare(base, cur, 0.30)
        assert len(failures) == 1

    def test_unmeasured_baseline_constrains_nothing(self):
        base = {"replay:baseline": {"events": 1000, "events_per_s": None}}
        cur = {}
        assert check_regression.compare(base, cur, 0.30) == []


class TestMain:
    def test_exit_zero_on_pass(self, tmp_path, capsys):
        base = _bench_json(tmp_path, "base.json",
                           {"replay:baseline": _entry(500_000.0)})
        cur = _bench_json(tmp_path, "cur.json",
                          {"replay:baseline": _entry(600_000.0)})
        assert check_regression.main([str(base), str(cur)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = _bench_json(tmp_path, "base.json",
                           {"replay:baseline": _entry(500_000.0)})
        cur = _bench_json(tmp_path, "cur.json",
                          {"replay:baseline": _entry(100_000.0)})
        assert check_regression.main([str(base), str(cur)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_custom_threshold(self, tmp_path):
        base = _bench_json(tmp_path, "base.json",
                           {"replay:baseline": _entry(500_000.0)})
        cur = _bench_json(tmp_path, "cur.json",
                          {"replay:baseline": _entry(440_000.0)})  # -12%
        assert check_regression.main([str(base), str(cur),
                                      "--threshold", "0.10"]) == 1
        assert check_regression.main([str(base), str(cur),
                                      "--threshold", "0.20"]) == 0

    def test_bad_threshold_rejected(self, tmp_path):
        base = _bench_json(tmp_path, "base.json", {})
        with pytest.raises(SystemExit):
            check_regression.main([str(base), str(base),
                                   "--threshold", "1.5"])


class TestMultiPair:
    """Several BASELINE CURRENT pairs gated by one invocation (the CI
    shape: engine and service files together)."""

    def test_all_pairs_pass(self, tmp_path, capsys):
        engine_base = _bench_json(tmp_path, "eb.json",
                                  {"replay:baseline": _entry(500_000.0)})
        service_base = _bench_json(tmp_path, "sb.json",
                                   {"account:service-64c": _entry(300_000.0)})
        assert check_regression.main(
            [str(engine_base), str(engine_base),
             str(service_base), str(service_base)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_in_second_pair_fails(self, tmp_path, capsys):
        engine_base = _bench_json(tmp_path, "eb.json",
                                  {"replay:baseline": _entry(500_000.0)})
        service_base = _bench_json(tmp_path, "sb.json",
                                   {"account:service-64c": _entry(300_000.0)})
        service_cur = _bench_json(tmp_path, "sc.json",
                                  {"account:service-64c": _entry(100_000.0)})
        assert check_regression.main(
            [str(engine_base), str(engine_base),
             str(service_base), str(service_cur)]) == 1
        assert "account:service-64c" in capsys.readouterr().err

    def test_failures_accumulate_across_pairs(self, tmp_path, capsys):
        base_a = _bench_json(tmp_path, "a.json",
                             {"replay:baseline": _entry(500_000.0)})
        cur_a = _bench_json(tmp_path, "a2.json",
                            {"replay:baseline": _entry(100_000.0)})
        base_b = _bench_json(tmp_path, "b.json",
                             {"account:service-64c": _entry(300_000.0)})
        cur_b = _bench_json(tmp_path, "b2.json",
                            {"account:service-64c": _entry(50_000.0)})
        assert check_regression.main(
            [str(base_a), str(cur_a), str(base_b), str(cur_b)]) == 1
        assert "2 regression(s)" in capsys.readouterr().err

    def test_odd_path_count_rejected(self, tmp_path):
        base = _bench_json(tmp_path, "base.json", {})
        with pytest.raises(SystemExit):
            check_regression.main([str(base), str(base), str(base)])
