"""Trace-cache tests: round trips, key invalidation, corruption recovery."""

import numpy as np
import pytest

from repro.engine import TraceCache, WorkloadSpec, trace_cache_root
from repro.engine.cache import ENV_CACHE

TINY = dict(operations=40, initial_nodes=10, pool_size=1 << 20)


@pytest.fixture
def spec():
    return WorkloadSpec.micro("ll", 8, **TINY)


@pytest.fixture
def cache(tmp_path):
    cache = TraceCache(tmp_path / "traces")
    yield cache
    TraceCache.clear_memory()


class TestRootResolution:
    def test_default_root_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE, str(tmp_path / "from-env"))
        assert trace_cache_root() == tmp_path / "from-env"

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_CACHE, "0")
        assert trace_cache_root() is None
        assert not TraceCache().enabled

    def test_explicit_override_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE, "0")
        assert trace_cache_root(tmp_path) == tmp_path

    def test_default_is_home_cache(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE, raising=False)
        root = trace_cache_root()
        assert root is not None
        assert root.name == "repro-traces"


class TestRoundTrip:
    def test_store_then_load_hits_disk(self, cache, spec):
        first = cache.get_or_generate(spec)
        assert cache.stats.generations == 1
        assert cache.path_for(spec).exists()

        TraceCache.clear_memory()
        again = cache.get_or_generate(spec)
        assert cache.stats.disk_hits == 1
        assert cache.stats.generations == 1  # no regeneration
        assert again.events == first.events
        assert again.total_instructions == first.total_instructions
        assert len(again.layout.ptes) == len(first.layout.ptes)

    def test_memory_layer_hits_before_disk(self, cache, spec):
        first = cache.get_or_generate(spec)
        assert cache.get_or_generate(spec) is first
        assert cache.stats.memory_hits == 1
        assert cache.stats.disk_hits == 0

    def test_probe_without_generation(self, cache, spec):
        assert cache.get_or_generate(spec, generate=False) is None
        assert cache.stats.generations == 0

    def test_disabled_cache_writes_nothing(self, tmp_path, spec):
        disabled = TraceCache("0")
        try:
            assert not disabled.enabled
            disabled.get_or_generate(spec)
            assert disabled.stats.generations == 1
            # Memory layer still works.
            disabled.get_or_generate(spec)
            assert disabled.stats.memory_hits == 1
        finally:
            TraceCache.clear_memory()

    def test_unwritable_root_does_not_fail_the_run(self, tmp_path, spec):
        # A root that can never be created (its parent is a file) must
        # degrade to cache-less operation, not crash mid-experiment.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        broken = TraceCache(blocker / "traces")
        try:
            trace = broken.get_or_generate(spec)
            assert trace is not None
            assert broken.stats.generations == 1
        finally:
            TraceCache.clear_memory()


class TestInvalidation:
    def test_param_change_misses(self, cache, spec):
        cache.get_or_generate(spec)
        other = WorkloadSpec.micro("ll", 8, **dict(TINY, operations=41))
        cache.get_or_generate(other)
        assert cache.stats.generations == 2

    def test_scale_change_misses(self, cache):
        # REPRO_OPS enters the key through the scaled params.
        cache.get_or_generate(WorkloadSpec.micro("ll", 8, **TINY))
        cache.get_or_generate(WorkloadSpec.micro("ll", 8, scale=0.5, **TINY))
        assert cache.stats.generations == 2

    def test_format_version_mismatch_regenerates(self, cache, spec,
                                                 monkeypatch):
        cache.get_or_generate(spec)
        old_path = cache.path_for(spec)
        assert old_path.exists()
        TraceCache.clear_memory()

        import repro.cpu.tracefile as tracefile
        monkeypatch.setattr(tracefile, "FORMAT_VERSION", 999)
        # The key changes with the version, so the old file is simply
        # never consulted; the trace regenerates.
        cache.get_or_generate(spec)
        assert cache.stats.generations == 2

    def test_stale_version_on_disk_regenerates(self, cache, spec):
        """A file whose *content* predates the current format is purged."""
        cache.get_or_generate(spec)
        path = cache.path_for(spec)
        TraceCache.clear_memory()

        # Rewrite the stored header with a bogus version, keeping the key.
        import json
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["version"] = 1
        arrays["header"] = np.frombuffer(json.dumps(header).encode(),
                                         dtype=np.uint8)
        np.savez_compressed(path, **arrays)

        cache.get_or_generate(spec)
        assert cache.stats.generations == 2
        assert cache.stats.disk_hits == 0

    def test_corrupt_file_regenerates(self, cache, spec):
        cache.get_or_generate(spec)
        path = cache.path_for(spec)
        TraceCache.clear_memory()

        path.write_bytes(b"not an npz file")
        cache.get_or_generate(spec)
        assert cache.stats.generations == 2
        # The corrupt entry was replaced by a loadable one.
        TraceCache.clear_memory()
        cache.get_or_generate(spec)
        assert cache.stats.disk_hits == 1

    def test_truncated_file_regenerates(self, cache, spec):
        cache.get_or_generate(spec)
        path = cache.path_for(spec)
        TraceCache.clear_memory()

        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        cache.get_or_generate(spec)
        assert cache.stats.generations == 2
