"""Engine-facade tests: trace lifecycle, warm cache, memoization."""

import pytest

from repro.engine import Engine, TraceCache, WorkloadSpec
from repro.experiments.figure6 import run_figure6
from repro.experiments.runner import ExperimentRunner
from repro.sim.simulator import MULTI_PMO_SCHEMES


@pytest.fixture
def engine(tmp_path):
    engine = Engine(cache=TraceCache(tmp_path / "traces"))
    yield engine
    TraceCache.clear_memory()


TINY = dict(operations=60, initial_nodes=12, pool_size=1 << 20)


class TestTraceLifecycle:
    def test_trace_for_is_memoized(self, engine):
        spec = WorkloadSpec.micro("ll", 8, **TINY)
        assert engine.trace_for(spec) is engine.trace_for(spec)
        assert engine.trace_generations == 1

    def test_release_forgets_object_but_not_disk(self, engine):
        spec = WorkloadSpec.micro("ll", 8, **TINY)
        first = engine.trace_for(spec)
        engine.release(spec)
        again = engine.trace_for(spec)
        assert again is not first
        assert engine.trace_generations == 1  # reloaded from disk
        assert engine.cache_stats.disk_hits == 1

    def test_warm_generates_each_spec_once(self, engine):
        specs = [WorkloadSpec.micro("ll", 8, **TINY),
                 WorkloadSpec.micro("ss", 8, **TINY),
                 WorkloadSpec.micro("ll", 8, **TINY)]  # duplicate
        engine.warm(specs)
        assert engine.trace_generations == 2
        engine.warm(specs)
        assert engine.trace_generations == 2


class TestReplayGrouping:
    def test_replay_shape(self, engine):
        spec = WorkloadSpec.micro("avl", 8, **TINY)
        results = engine.replay(spec, MULTI_PMO_SCHEMES)
        assert set(results) == {"baseline", *MULTI_PMO_SCHEMES}
        base = results["baseline"].cycles
        for name in MULTI_PMO_SCHEMES:
            assert results[name].baseline_cycles == base

    def test_replay_many_preserves_spec_order(self, engine):
        specs = [WorkloadSpec.micro("ll", 8, **TINY),
                 WorkloadSpec.micro("ll", 16, **TINY)]
        results = engine.replay_many(specs, ("lowerbound",))
        assert len(results) == 2
        # Each batch slot must match its spec's individual replay.
        for spec, batched in zip(specs, results):
            alone = engine.replay(spec, ("lowerbound",))
            assert batched["baseline"].cycles == alone["baseline"].cycles
            assert batched["lowerbound"].cycles == \
                alone["lowerbound"].cycles
        assert results[0]["baseline"].cycles != results[1]["baseline"].cycles

    def test_duplicate_schemes_deduplicated(self, engine):
        spec = WorkloadSpec.micro("ll", 8, **TINY)
        results = engine.replay(spec, ("lowerbound", "lowerbound"))
        assert set(results) == {"baseline", "lowerbound"}


class TestMemoize:
    def test_producer_runs_once(self, engine):
        calls = []
        for _ in range(3):
            engine.memoize("key", lambda: calls.append(1))
        assert len(calls) == 1

    def test_figure6_memoized_on_runner(self, engine):
        runner = ExperimentRunner(scale=0.02, engine=engine)
        first = run_figure6(runner, benchmarks=("avl",), points=(16,))
        generations = engine.trace_generations
        second = run_figure6(runner, benchmarks=("avl",), points=(16,))
        assert second is first  # no private-attribute hack, still shared
        assert engine.trace_generations == generations


class TestWarmCacheRerun:
    def test_figure6_rerun_performs_zero_generations(self, tmp_path):
        """Acceptance criterion: a warm-cache rerun of a Figure 6 sweep
        generates no traces at all (counter-verified)."""
        root = tmp_path / "warm"

        def sweep():
            TraceCache.clear_memory()  # cold process, warm disk
            engine = Engine(cache=TraceCache(root))
            runner = ExperimentRunner(scale=0.02, engine=engine)
            data = run_figure6(runner, benchmarks=("avl", "ll"),
                               points=(16, 32))
            return engine.trace_generations, data

        cold_generations, cold = sweep()
        assert cold_generations == 4  # 2 benchmarks x 2 points
        warm_generations, warm = sweep()
        assert warm_generations == 0
        assert warm == cold
        TraceCache.clear_memory()
