"""Shared hygiene for the observability tests.

Every test in this package starts with observability *off*, an empty
process-global registry/event trace, and a cold in-memory trace cache —
and leaves the process the same way, so obs state can never leak into
(or out of) the rest of the suite.
"""

import pytest

from repro import obs
from repro.engine import TraceCache

_OBS_VARS = ("REPRO_EVENTS", "REPRO_METRICS", "REPRO_EVENTS_SAMPLE",
             "REPRO_EVENTS_BUFFER")


@pytest.fixture(autouse=True)
def _clean_obs(monkeypatch):
    for var in _OBS_VARS:
        monkeypatch.delenv(var, raising=False)
    obs.reset()
    TraceCache.clear_memory()
    yield
    obs.reset()
    TraceCache.clear_memory()
