"""Event stream round-trip: emit -> jsonl -> obsreport.

One instrumented replay; then every record must parse, obey the schema,
and reconstruct the per-scheme overhead breakdown *exactly* — the
acceptance criterion for ``REPRO_EVENTS``.
"""

import json

import pytest

from repro import obs
from repro.engine import TraceCache
from repro.experiments.runner import ExperimentRunner
from repro.obs import schema
from repro.sim.simulator import MULTI_PMO_SCHEMES
from repro.tools import obsreport


@pytest.fixture()
def traced_run(monkeypatch, tmp_path):
    sink = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", f"jsonl:{sink}")
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    obs.reset()
    TraceCache.clear_memory()
    runner = ExperimentRunner(scale=0.02)
    results = runner.replay_micro("avl", 16, MULTI_PMO_SCHEMES)
    obs.reset()  # final flush
    return sink, results


class TestJsonlStream:
    def test_every_line_parses_and_obeys_schema(self, traced_run):
        sink, _ = traced_run
        lines = sink.read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in schema.EVENTS
            for field in schema.ENVELOPE:
                assert field in record, record["kind"]
            for field in schema.EVENTS[record["kind"]]:
                assert field in record, record["kind"]

    def test_sequence_is_monotone(self, traced_run):
        sink, _ = traced_run
        seqs = [json.loads(line)["seq"] for line in
                sink.read_text().splitlines()]
        assert seqs == sorted(seqs)

    def test_replay_done_buckets_match_runstats_exactly(self, traced_run):
        sink, results = traced_run
        events = obsreport.load_events(str(sink))
        done = {e["scheme"]: e for e in events if e["kind"] == "replay.done"}
        # baseline + every requested scheme replayed exactly once
        assert set(done) == {"baseline", *MULTI_PMO_SCHEMES}
        for scheme, stats in results.items():
            assert done[scheme]["buckets"] == stats.buckets, scheme
            assert done[scheme]["cycles"] == stats.cycles, scheme
            assert done[scheme]["instructions"] == stats.instructions

    def test_perm_switch_counts_match(self, traced_run):
        sink, results = traced_run
        events = obsreport.load_events(str(sink))
        for scheme, stats in results.items():
            count = sum(1 for e in events if e["kind"] == "perm_switch"
                        and e["scheme"] == scheme)
            assert count == stats.perm_switches, scheme

    def test_corrupt_lines_are_skipped(self, traced_run):
        sink, _ = traced_run
        intact = len(obsreport.load_events(str(sink)))
        with open(sink, "a") as handle:
            handle.write('{"kind": "truncat')  # killed mid-flush
        assert len(obsreport.load_events(str(sink))) == intact


class TestSampling:
    def test_walk_events_are_decimated(self, monkeypatch, tmp_path):
        def run(sample):
            sink = tmp_path / f"sampled-{sample}.jsonl"
            monkeypatch.setenv("REPRO_EVENTS", f"jsonl:{sink}")
            monkeypatch.setenv("REPRO_EVENTS_SAMPLE", str(sample))
            monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
            obs.reset()
            TraceCache.clear_memory()
            runner = ExperimentRunner(scale=0.02)
            results = runner.replay_micro("avl", 16, ("mpk_virt",))
            obs.reset()
            events = obsreport.load_events(str(sink))
            walks = sum(1 for e in events if e["kind"] == "dtt_walk")
            return walks, results["mpk_virt"]

        walks_full, stats = run(1)
        assert walks_full == stats.dttlb_misses
        walks_tenth, stats = run(10)
        assert walks_tenth == stats.dttlb_misses // 10
        # Non-sampled kinds are never decimated.
        assert stats.perm_switches > 0


class TestObsreportCli:
    def test_all_commands_run(self, traced_run, capsys):
        sink, _ = traced_run
        for command in ("summary", "breakdown", "timeline"):
            assert obsreport.main([command, str(sink)]) == 0
            assert capsys.readouterr().out.strip()

    def test_breakdown_renders_buckets_and_schemes(self, traced_run,
                                                   capsys):
        sink, results = traced_run
        assert obsreport.main(["breakdown", str(sink)]) == 0
        out = capsys.readouterr().out
        from repro.sim.stats import OVERHEAD_BUCKETS
        for bucket in OVERHEAD_BUCKETS:
            assert bucket in out
        for scheme in results:
            assert scheme in out

    def test_timeline_filters(self, traced_run, capsys):
        sink, _ = traced_run
        assert obsreport.main(["timeline", str(sink),
                               "--scheme", "domain_virt",
                               "--bins", "20"]) == 0
        out = capsys.readouterr().out
        assert "domain_virt" in out
        assert "mpk_virt" not in out

    def test_empty_stream_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert obsreport.main(["summary", str(empty)]) == 1
