"""Unit tests for the metrics registry primitives."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_overwrites(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram(self):
        histogram = Histogram()
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 12.0
        assert histogram.min == 2.0
        assert histogram.max == 6.0
        assert histogram.mean == 4.0
        assert histogram.samples == [2.0, 4.0, 6.0]

    def test_empty_histogram_mean(self):
        assert Histogram().mean == 0.0
        assert Histogram().as_dict() == {"count": 0, "sum": 0.0,
                                         "min": None, "max": None,
                                         "samples": []}

    def test_percentiles_are_exact(self):
        histogram = Histogram()
        for value in (40.0, 10.0, 20.0, 30.0):  # order must not matter
            histogram.observe(value)
        assert histogram.percentile(0) == 10.0
        assert histogram.percentile(50) == 25.0  # interpolated
        assert histogram.percentile(100) == 40.0
        assert histogram.percentile(75) == pytest.approx(32.5)

    def test_percentile_edge_cases(self):
        assert Histogram().percentile(99) is None
        single = Histogram()
        single.observe(7.0)
        assert single.percentile(0) == single.percentile(100) == 7.0
        with pytest.raises(ValueError):
            single.percentile(101)

    def test_merge_concatenates_samples(self):
        left, right = Histogram(), Histogram()
        left.observe(1.0)
        right.observe(3.0)
        left.merge(right.as_dict())
        assert sorted(left.samples) == [1.0, 3.0]
        assert left.percentile(100) == 3.0
        # A pre-samples export still folds count/sum/min/max.
        left.merge({"count": 1, "sum": 9.0, "min": 9.0, "max": 9.0})
        assert left.count == 3
        assert left.max == 9.0


class TestRegistry:
    def test_create_on_demand_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert list(registry.names()) == ["a", "b", "c"]

    def test_value_lookup(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(3.0)
        assert registry.value("c") == 7
        assert registry.value("g") == 0.5
        assert registry.value("h")["count"] == 1
        with pytest.raises(KeyError):
            registry.value("missing")

    def test_dict_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(9.0)
        clone = MetricsRegistry.from_dict(registry.as_dict())
        assert clone.as_dict() == registry.as_dict()

    def test_merge_semantics(self):
        left = MetricsRegistry()
        left.counter("c").inc(3)
        left.gauge("g").set(1.0)
        left.histogram("h").observe(5.0)
        right = MetricsRegistry()
        right.counter("c").inc(4)
        right.gauge("g").set(2.0)
        right.histogram("h").observe(1.0)
        left.merge(right)
        # Counters add, gauges take the merged-in value, histograms combine.
        assert left.value("c") == 7
        assert left.value("g") == 2.0
        assert left.value("h") == {"count": 2, "sum": 6.0,
                                   "min": 1.0, "max": 5.0,
                                   "samples": [5.0, 1.0]}

    def test_merge_accepts_dict_export(self):
        registry = MetricsRegistry()
        registry.merge({"counters": {"c": 2},
                        "histograms": {"h": {"count": 1, "sum": 4.0,
                                             "min": 4.0, "max": 4.0}}})
        assert registry.value("c") == 2
        assert registry.value("h")["max"] == 4.0
