"""Metric merging across REPRO_JOBS fork workers.

Worker registries ride back inside pickled ``RunStats``; the executor
folds them into the parent's process-global registry.  Parallel runs
must report complete metrics *and* leave the replay numbers untouched.
"""

import pytest

from repro import obs
from repro.engine import TraceCache
from repro.engine.executor import _fork_available
from repro.experiments.runner import ExperimentRunner
from repro.sim.simulator import MULTI_PMO_SCHEMES


def _run(monkeypatch, tmp_path, jobs):
    monkeypatch.setenv("REPRO_METRICS", "1")
    monkeypatch.setenv("REPRO_JOBS", str(jobs))
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / f"cache-{jobs}"))
    obs.reset()
    TraceCache.clear_memory()
    runner = ExperimentRunner(scale=0.02)
    results = runner.replay_micro("avl", 16, MULTI_PMO_SCHEMES)
    snapshot = runner.metrics_snapshot()
    obs.reset()
    return results, snapshot


@pytest.mark.skipif(not _fork_available(), reason="requires fork")
class TestForkWorkerMerge:
    def test_parallel_metrics_are_complete(self, monkeypatch, tmp_path):
        results, snapshot = _run(monkeypatch, tmp_path, jobs=2)
        job_count = len(results)  # baseline + each scheme
        assert snapshot is not None
        counters = snapshot["counters"]
        assert counters["engine.jobs.completed"] == job_count
        # Per-replay harvests merged across workers: totals add up.
        assert counters["tlb.l1.hits"] == sum(
            stats.tlb_l1_hits for stats in results.values())
        gauges = snapshot["gauges"]
        assert gauges["engine.workers"] == 2.0
        assert 0.0 < gauges["engine.worker.utilization"] <= 1.0
        wall = snapshot["histograms"]["engine.job.wall_s"]
        assert wall["count"] == job_count
        assert wall["sum"] > 0.0

    def test_every_runstats_carries_metrics(self, monkeypatch, tmp_path):
        results, _ = _run(monkeypatch, tmp_path, jobs=2)
        for scheme, stats in results.items():
            assert stats.metrics is not None, scheme
            assert stats.metrics["counters"]["engine.jobs.completed"] == 1

    def test_parallel_equals_serial_modulo_metrics(self, monkeypatch,
                                                   tmp_path):
        serial, _ = _run(monkeypatch, tmp_path, jobs=1)
        parallel, _ = _run(monkeypatch, tmp_path, jobs=2)
        assert serial.keys() == parallel.keys()
        for scheme in serial:
            left = serial[scheme].to_dict()
            right = parallel[scheme].to_dict()
            # Wall/CPU histograms legitimately differ; the replay must not.
            left.pop("metrics")
            right.pop("metrics")
            assert left == right, scheme


class TestSerialMerge:
    def test_serial_run_populates_global_registry(self, monkeypatch,
                                                  tmp_path):
        results, snapshot = _run(monkeypatch, tmp_path, jobs=1)
        assert snapshot["counters"]["engine.jobs.completed"] == len(results)
        assert snapshot["gauges"]["engine.workers"] == 1.0

    def test_snapshot_none_when_disabled(self):
        assert ExperimentRunner(scale=0.02).metrics_snapshot() is None
