"""The schema contract: code, docs, and runtime must agree.

``src/repro/obs/schema.py`` and ``docs/OBSERVABILITY.md`` are two halves
of one contract; this module diffs them in both directions, then runs an
instrumented replay and checks that everything actually emitted is
covered by the contract.
"""

import pathlib

import pytest

from repro import obs
from repro.engine import TraceCache
from repro.experiments.runner import ExperimentRunner
from repro.obs import schema

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / \
    "OBSERVABILITY.md"


def _tables(text):
    """Markdown tables as (header cells, list of row cells)."""
    tables, current = [], []
    for line in text.splitlines():
        if line.startswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            current.append(cells)
        elif current:
            tables.append((current[0], current[2:]))  # skip |---| rule
            current = []
    if current:
        tables.append((current[0], current[2:]))
    return tables


def _table_by_header(first_cell):
    for header, rows in _tables(DOC.read_text(encoding="utf-8")):
        if header and header[0] == first_cell:
            return rows
    raise AssertionError(
        f"docs/OBSERVABILITY.md has no table headed {first_cell!r}")


def _code(cell):
    assert cell.startswith("`") and cell.endswith("`"), \
        f"first cell must be backticked code: {cell!r}"
    return cell.strip("`")


class TestMetricsTable:
    def test_docs_match_schema_exactly(self):
        rows = _table_by_header("Metric")
        documented = {_code(row[0]): row[1] for row in rows}
        assert set(documented) == set(schema.METRICS), \
            "metric names drifted between schema.py and OBSERVABILITY.md"
        for name, (mtype, _source, _desc) in schema.METRICS.items():
            assert documented[name] == mtype, \
                f"{name}: documented type {documented[name]!r} != {mtype!r}"

    def test_docs_sources_match_schema(self):
        rows = _table_by_header("Metric")
        for row in rows:
            name = _code(row[0])
            assert row[2] == schema.METRICS[name][1], name


class TestEventsTable:
    def test_docs_match_schema_exactly(self):
        rows = _table_by_header("Kind")
        documented = {}
        for row in rows:
            fields = () if row[1] == "—" else tuple(
                part.strip().strip("`") for part in row[1].split(","))
            documented[_code(row[0])] = fields
        assert set(documented) == set(schema.EVENTS), \
            "event kinds drifted between schema.py and OBSERVABILITY.md"
        for kind, fields in schema.EVENTS.items():
            assert documented[kind] == fields, kind


class TestKnobsTable:
    def test_docs_match_schema_exactly(self):
        rows = _table_by_header("Knob")
        documented = {_code(row[0]) for row in rows}
        assert documented == set(schema.ENV_KNOBS)


class TestRuntimeHonorsContract:
    @pytest.fixture()
    def instrumented(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENTS", "ring")
        monkeypatch.setenv("REPRO_EVENTS_BUFFER", "100000")
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        obs.reset()
        TraceCache.clear_memory()
        runner = ExperimentRunner(scale=0.02)
        results = runner.replay_micro(
            "avl", 16, ("libmpk", "mpk_virt", "domain_virt"))
        records = list(obs.active_events().records())
        obs.reset()
        return results, records

    def test_emitted_metrics_are_all_documented(self, instrumented):
        results, _ = instrumented
        for stats in results.values():
            payload = stats.metrics
            for group in ("counters", "gauges", "histograms"):
                for name in payload.get(group, {}):
                    assert name in schema.METRICS, name
                    assert schema.METRICS[name][0] == group[:-1], name

    def test_emitted_events_are_all_documented(self, instrumented):
        _, records = instrumented
        assert records
        allowed_extra = set(schema.ENVELOPE) | set(schema.REPLAY_CONTEXT)
        for record in records:
            kind = record["kind"]
            assert kind in schema.EVENTS, kind
            unknown = set(record) - allowed_extra - set(schema.EVENTS[kind])
            assert not unknown, f"{kind}: undocumented fields {unknown}"

    def test_sampled_kinds_are_a_subset_of_events(self):
        assert set(schema.SAMPLED_EVENTS) <= set(schema.EVENTS)
