"""Acceptance criterion: observability must never perturb the numbers.

With ``REPRO_EVENTS`` unset, a replay produces ``RunStats`` that are
bit-identical to the current (uninstrumented) behavior — and with it
*set*, the only difference is the attached ``metrics`` payload: cycle
accounting, bucket totals, and every counter stay bit-identical.
"""

import pytest

from repro import obs
from repro.engine import TraceCache
from repro.experiments.runner import ExperimentRunner
from repro.sim.simulator import MULTI_PMO_SCHEMES


def _replay(monkeypatch, tmp_path, tag, **env):
    for var, value in env.items():
        monkeypatch.setenv(var, value)
    obs.reset()
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    TraceCache.clear_memory()
    runner = ExperimentRunner(scale=0.02)
    results = runner.replay_micro("avl", 16, MULTI_PMO_SCHEMES)
    for var in env:
        monkeypatch.delenv(var, raising=False)
    obs.reset()
    return results


class TestDisabledIsNoop:
    def test_enabled_flags_off_by_default(self):
        assert not obs.enabled()
        assert not obs.events_enabled()
        assert not obs.metrics_enabled()
        assert obs.active_events() is None
        assert obs.metrics() is None

    def test_disabled_replay_attaches_nothing(self, monkeypatch, tmp_path):
        results = _replay(monkeypatch, tmp_path, "off")
        for stats in results.values():
            assert stats.metrics is None
            assert "metrics" not in stats.to_dict()

    def test_instrumented_replay_is_bit_identical(self, monkeypatch,
                                                  tmp_path):
        """Tracing on vs off: everything but the metrics payload equal."""
        plain = _replay(monkeypatch, tmp_path, "off")
        sink = tmp_path / "events.jsonl"
        traced = _replay(monkeypatch, tmp_path, "on",
                         REPRO_EVENTS=f"jsonl:{sink}")
        assert plain.keys() == traced.keys()
        for scheme in plain:
            observed = traced[scheme].to_dict()
            payload = observed.pop("metrics", None)
            assert payload is not None, scheme
            assert observed == plain[scheme].to_dict(), scheme
        assert sink.exists()

    def test_metrics_only_mode(self, monkeypatch, tmp_path):
        """REPRO_METRICS alone harvests metrics but writes no events."""
        results = _replay(monkeypatch, tmp_path, "metrics",
                          REPRO_METRICS="1")
        for stats in results.values():
            assert stats.metrics is not None
            counters = stats.metrics["counters"]
            assert counters["tlb.l1.hits"] == stats.tlb_l1_hits
            assert counters["tlb.l2.misses"] == stats.tlb_misses
        assert list(tmp_path.iterdir()) == []

    def test_off_values_disable(self, monkeypatch):
        for value in ("", "0", "off", "none", "disabled", "false", "OFF"):
            monkeypatch.setenv("REPRO_EVENTS", value)
            assert not obs.events_enabled(), value
            monkeypatch.setenv("REPRO_METRICS", value)
            monkeypatch.delenv("REPRO_EVENTS", raising=False)
            assert not obs.metrics_enabled(), value
