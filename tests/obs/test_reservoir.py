"""Bounded-reservoir behavior of :class:`Histogram` at scale.

Below ``RESERVOIR_SIZE`` nothing changes — exact samples, exact
percentiles, the invariants every pre-existing golden number relies on.
Past it, retention degrades to a deterministic algorithm-R reservoir:
count/sum/min/max stay exact, ``sampling`` flips on, and the
``service.latency_reservoir_engaged`` obs counter records that the
switch happened during accounting.
"""

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import Histogram
from repro.service.sched.accounting import SchedAccounting


@pytest.fixture
def small_reservoir(monkeypatch):
    """Dial the exact-retention ceiling down so tests engage it."""
    monkeypatch.setattr(Histogram, "RESERVOIR_SIZE", 64)
    return 64


class TestExactBelowThreshold:
    def test_no_sampling_below_cap(self, small_reservoir):
        histogram = Histogram()
        values = [float(i) for i in range(small_reservoir)]
        for value in values:
            histogram.observe(value)
        assert not histogram.sampling
        assert histogram.samples == values
        assert histogram.percentile(50) == pytest.approx(31.5)

    def test_observe_many_matches_sequential_observe(self):
        seq, bulk = Histogram(), Histogram()
        rng = np.random.RandomState(3)
        values = rng.exponential(1000.0, size=2000)
        for value in values.tolist():
            seq.observe(value)
        bulk.observe_many(values)
        # Bit-identical, not approximately equal: same left-fold sum,
        # same retained list.
        assert bulk.total == seq.total
        assert bulk.count == seq.count
        assert bulk.min == seq.min and bulk.max == seq.max
        assert bulk.samples == seq.samples

    def test_observe_many_empty(self):
        histogram = Histogram()
        histogram.observe_many(np.empty(0))
        assert histogram.count == 0
        assert histogram.samples == []


class TestReservoirEngages:
    def test_sampling_flips_and_aggregates_stay_exact(self,
                                                      small_reservoir):
        histogram = Histogram()
        values = [float(i) for i in range(10 * small_reservoir)]
        for value in values:
            histogram.observe(value)
        assert histogram.sampling
        assert len(histogram.samples) == small_reservoir
        assert histogram.count == len(values)
        assert histogram.total == sum(values)
        assert histogram.min == 0.0
        assert histogram.max == values[-1]
        assert all(value in values for value in histogram.samples)

    def test_observe_many_equals_scalar_past_cap(self, small_reservoir):
        seq, bulk = Histogram(), Histogram()
        values = np.arange(500, dtype=np.float64)
        for value in values.tolist():
            seq.observe(value)
        bulk.observe_many(values)
        assert bulk.samples == seq.samples
        assert bulk.total == seq.total
        assert bulk.sampling and seq.sampling

    def test_deterministic_across_instances(self, small_reservoir):
        first, second = Histogram(), Histogram()
        values = np.arange(1000, dtype=np.float64)
        first.observe_many(values)
        second.observe_many(values)
        assert first.samples == second.samples

    def test_percentile_is_reasonable_estimate(self, small_reservoir):
        histogram = Histogram()
        histogram.observe_many(np.arange(100_000, dtype=np.float64))
        # Uniform stream: the reservoir's median should sit near the
        # true median (loose bound — it's an estimate, not exact).
        assert 20_000 < histogram.percentile(50) < 80_000

    def test_merge_respects_reservoir(self, small_reservoir):
        left = Histogram()
        right = Histogram()
        right.observe_many(np.arange(200, dtype=np.float64))
        left.merge(right.as_dict())
        assert len(left.samples) <= small_reservoir
        assert left.min == 0.0


class TestAttainmentWeighting:
    def test_exact_when_not_sampling(self):
        sched = SchedAccounting(slo_target=10.0)
        for latency in (5.0, 15.0, 8.0, 12.0):
            sched.observe_request(0, latency, False)
        assert sched.attainment_at(10.0) == 0.5

    def test_reservoir_weighted_by_true_count(self, small_reservoir):
        sched = SchedAccounting(slo_target=10.0)
        histogram = Histogram()
        # 1000 observations, half under target, reservoir keeps 64.
        values = np.r_[np.full(500, 1.0), np.full(500, 100.0)]
        histogram.observe_many(values)
        sched.latency[0] = histogram
        attainment = sched.attainment_at(10.0)
        retained_within = sum(1 for s in histogram.samples if s <= 10.0)
        assert attainment == pytest.approx(
            retained_within / len(histogram.samples))


class TestObsCounter:
    def test_counter_increments_when_reservoir_engages(
            self, monkeypatch, small_reservoir):
        monkeypatch.setenv("REPRO_METRICS", "1")
        obs.reset()
        from repro.engine import replay_one
        from repro.service import (ServiceParams, account, build_plan,
                                   batch_boundaries,
                                   generate_service_trace)
        params = ServiceParams(n_clients=4, n_requests=200)
        plan = build_plan(params)
        trace, _ws = generate_service_trace(params)
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        account(plan, trace, stats, frequency_hz=2_000_000_000.0)
        registry = obs.metrics()
        engaged = registry.counter(
            "service.latency_reservoir_engaged").value
        # 200 requests > the dialed-down 64-sample cap: the run-level
        # latency histogram (and the hot clients') sampled.
        assert engaged >= 1

    def test_counter_untouched_below_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        obs.reset()
        from repro.engine import replay_one
        from repro.service import (ServiceParams, account, build_plan,
                                   batch_boundaries,
                                   generate_service_trace)
        params = ServiceParams(n_clients=4, n_requests=60)
        plan = build_plan(params)
        trace, _ws = generate_service_trace(params)
        stats = replay_one(trace, "domain_virt",
                           marks=batch_boundaries(trace))
        account(plan, trace, stats, frequency_hz=2_000_000_000.0)
        registry = obs.metrics()
        assert registry.counter(
            "service.latency_reservoir_engaged").value == 0
