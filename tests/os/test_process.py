"""Tests for processes, threads, and the pkey allocator."""

import pytest

from repro.errors import NotAttachedError, PkeyError
from repro.os.kernel import Kernel
from repro.os.process import ALLOCATABLE_PKEYS


@pytest.fixture
def process():
    return Kernel().create_process()


class TestThreads:
    def test_process_starts_with_main_thread(self, process):
        assert process.threads == [process.main_thread]

    def test_spawned_threads_have_unique_tids(self, process):
        tids = {process.spawn_thread().tid for _ in range(10)}
        tids.add(process.main_thread.tid)
        assert len(tids) == 11

    def test_thread_knows_its_process(self, process):
        thread = process.spawn_thread()
        assert thread.process is process


class TestPkeyAllocator:
    def test_fifteen_allocatable_keys(self, process):
        keys = [process.pkey_alloc() for _ in range(15)]
        assert sorted(keys) == list(ALLOCATABLE_PKEYS)
        assert 0 not in keys  # key 0 is the reserved NULL/default key

    def test_sixteenth_alloc_fails(self, process):
        for _ in range(15):
            process.pkey_alloc()
        with pytest.raises(PkeyError):
            process.pkey_alloc()

    def test_free_then_realloc(self, process):
        keys = [process.pkey_alloc() for _ in range(15)]
        process.pkey_free(keys[3])
        assert process.pkey_alloc() == keys[3]

    def test_double_free_rejected(self, process):
        key = process.pkey_alloc()
        process.pkey_free(key)
        with pytest.raises(PkeyError):
            process.pkey_free(key)

    def test_free_of_reserved_key_rejected(self, process):
        with pytest.raises(PkeyError):
            process.pkey_free(0)

    def test_free_pkey_count(self, process):
        assert process.free_pkey_count == 15
        process.pkey_alloc()
        assert process.free_pkey_count == 14


class TestAttachments:
    def test_attachment_lookup_unknown(self, process):
        with pytest.raises(NotAttachedError):
            process.attachment(7)

    def test_is_attached(self, process):
        assert not process.is_attached(7)
