"""Tests for VA management and the paper's PMO alignment rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressSpaceError
from repro.os.address_space import (GB1, KB4, MB2, AddressSpace,
                                    granule_for_size, region_span)


class TestGranuleRule:
    """Section IV-A: a PMO occupies a 4KB / 2MB / 1GB aligned region."""

    @pytest.mark.parametrize("size,granule", [
        (1, KB4), (KB4, KB4),
        (KB4 + 1, MB2), (MB2, MB2),
        (MB2 + 1, GB1), (8 << 20, GB1), (GB1, GB1),
    ])
    def test_smallest_covering_granule(self, size, granule):
        assert granule_for_size(size) == granule

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            granule_for_size(0)

    def test_over_1gb_takes_multiple_granules(self):
        granule, reserved = region_span(3 * GB1 + 5)
        assert granule == GB1
        assert reserved == 4 * GB1

    @given(st.integers(1, 8 * GB1))
    @settings(max_examples=50)
    def test_reservation_covers_size(self, size):
        granule, reserved = region_span(size)
        assert reserved >= size
        assert reserved % granule == 0


class TestReservation:
    def test_pmo_base_is_granule_aligned(self):
        space = AddressSpace()
        vma = space.reserve_pmo(8 << 20, pmo_id=1)
        assert vma.base % GB1 == 0
        assert vma.is_nvm

    def test_pmo_regions_do_not_overlap(self):
        space = AddressSpace()
        vmas = [space.reserve_pmo(8 << 20, pmo_id=i) for i in range(1, 20)]
        spans = sorted((v.base, v.end) for v in vmas)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_mixed_granules_do_not_overlap(self):
        space = AddressSpace()
        sizes = [KB4, 8 << 20, MB2, 100, GB1, KB4 + 1]
        vmas = [space.reserve_pmo(size, pmo_id=i + 1)
                for i, size in enumerate(sizes)]
        spans = sorted((v.base, v.end) for v in vmas)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_volatile_regions_separate_from_pmo_area(self):
        space = AddressSpace()
        pmo = space.reserve_pmo(KB4, pmo_id=1)
        vol = space.reserve_volatile(1 << 20)
        assert vol.base > pmo.end
        assert not vol.is_nvm
        assert vol.pmo_id == 0

    def test_release(self):
        space = AddressSpace()
        vma = space.reserve_pmo(KB4, pmo_id=1)
        space.release(vma.base)
        assert space.find(vma.base) is None
        with pytest.raises(AddressSpaceError):
            space.release(vma.base)


class TestFind:
    def test_find_inside_usable_size(self):
        space = AddressSpace()
        vma = space.reserve_pmo(8 << 20, pmo_id=3)
        assert space.find(vma.base) is vma
        assert space.find(vma.base + (8 << 20) - 1) is vma

    def test_find_in_reserved_but_unused_tail_is_none(self):
        # The PMO does not have to use its whole VA range; addresses past
        # its size are not part of the object.
        space = AddressSpace()
        vma = space.reserve_pmo(8 << 20, pmo_id=3)
        assert space.find(vma.base + (8 << 20)) is None

    def test_find_unmapped_address(self):
        assert AddressSpace().find(0x1234) is None

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 1 << 24), min_size=1, max_size=30))
    def test_find_is_consistent_with_reservations(self, sizes):
        space = AddressSpace()
        vmas = [space.reserve_pmo(size, pmo_id=i + 1)
                for i, size in enumerate(sizes)]
        for vma in vmas:
            assert space.find(vma.base) is vma
            assert space.find(vma.base + vma.size - 1) is vma
