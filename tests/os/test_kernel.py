"""Tests for the kernel: attach/detach, sharing policy, demand paging."""

import pytest

from repro.errors import (AttachError, NotAttachedError,
                          PermissionDeniedError)
from repro.permissions import Perm
from repro.mem.memory import PhysicalMemory
from repro.mem.page_table import vpn_of
from repro.os.kernel import Kernel

MODE = (Perm.RW, Perm.R)


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def process(kernel):
    return kernel.create_process()


def make_pool(kernel, name="p", size=8 << 20, owner=0, **kwargs):
    kernel.pools.pool_create(name, size, MODE, owner=owner, **kwargs)
    return name


class TestAttach:
    def test_attach_returns_domain_equal_to_pmo_id(self, kernel, process):
        name = make_pool(kernel)
        attachment = kernel.attach(process, name, Perm.RW)
        meta = kernel.pools.namespace.lookup(name)
        assert attachment.pmo_id == meta.pool_id

    def test_attach_reserves_granule_region(self, kernel, process):
        name = make_pool(kernel, size=8 << 20)
        attachment = kernel.attach(process, name, Perm.RW)
        assert attachment.vma.granule == 1 << 30

    def test_attach_intent_none_rejected(self, kernel, process):
        name = make_pool(kernel)
        with pytest.raises(AttachError):
            kernel.attach(process, name, Perm.NONE)

    def test_double_attach_rejected(self, kernel, process):
        name = make_pool(kernel)
        kernel.attach(process, name, Perm.RW)
        with pytest.raises(AttachError):
            kernel.attach(process, name, Perm.R)

    def test_namespace_permission_enforced(self, kernel):
        name = make_pool(kernel, owner=1)
        other = kernel.create_process(uid=2)
        with pytest.raises(PermissionDeniedError):
            kernel.attach(other, name, Perm.RW)  # others only get R
        assert kernel.attach(other, name, Perm.R)

    def test_attach_key_checked(self, kernel, process):
        name = make_pool(kernel, name="locked", attach_key=0xBEEF)
        with pytest.raises(PermissionDeniedError):
            kernel.attach(process, name, Perm.RW)
        assert kernel.attach(process, name, Perm.RW, attach_key=0xBEEF)


class TestSharingPolicy:
    """Section IV-A: exclusive writer XOR multiple readers."""

    def test_two_readers_allowed(self, kernel):
        name = make_pool(kernel)
        p1, p2 = kernel.create_process(), kernel.create_process()
        kernel.attach(p1, name, Perm.R)
        kernel.attach(p2, name, Perm.R)

    def test_writer_excludes_readers(self, kernel):
        name = make_pool(kernel)
        p1, p2 = kernel.create_process(), kernel.create_process()
        kernel.attach(p1, name, Perm.RW)
        with pytest.raises(AttachError):
            kernel.attach(p2, name, Perm.R)

    def test_reader_excludes_writer(self, kernel):
        name = make_pool(kernel)
        p1, p2 = kernel.create_process(), kernel.create_process()
        kernel.attach(p1, name, Perm.R)
        with pytest.raises(AttachError):
            kernel.attach(p2, name, Perm.RW)

    def test_detach_releases_the_share(self, kernel):
        name = make_pool(kernel)
        p1, p2 = kernel.create_process(), kernel.create_process()
        attachment = kernel.attach(p1, name, Perm.RW)
        kernel.detach(p1, attachment.pmo_id)
        kernel.attach(p2, name, Perm.RW)


class TestDetach:
    def test_detach_unmaps_pages_and_releases_va(self, kernel, process):
        name = make_pool(kernel)
        attachment = kernel.attach(process, name, Perm.RW)
        vaddr = attachment.vma.base + 4096
        kernel.ensure_mapped(process, vaddr)
        assert process.page_table.mapped_pages == 1
        kernel.detach(process, attachment.pmo_id)
        assert process.page_table.mapped_pages == 0
        assert process.address_space.find(vaddr) is None

    def test_detach_unknown_pmo(self, kernel, process):
        with pytest.raises(NotAttachedError):
            kernel.detach(process, 99)

    def test_process_exit_auto_detaches(self, kernel):
        """Section IV-A: the system detaches PMOs when a process dies."""
        name = make_pool(kernel)
        p1 = kernel.create_process()
        kernel.attach(p1, name, Perm.RW)
        kernel.process_exit(p1)
        p2 = kernel.create_process()
        kernel.attach(p2, name, Perm.RW)  # share was released


class TestDemandPaging:
    def test_pmo_page_gets_nvm_frame(self, kernel, process):
        name = make_pool(kernel)
        attachment = kernel.attach(process, name, Perm.RW)
        pte = kernel.ensure_mapped(process, attachment.vma.base)
        assert PhysicalMemory.is_nvm_frame(pte.pfn)
        assert pte.domain == attachment.pmo_id

    def test_volatile_page_gets_dram_frame(self, kernel, process):
        vma = kernel.map_volatile(process, 1 << 16)
        pte = kernel.ensure_mapped(process, vma.base)
        assert not PhysicalMemory.is_nvm_frame(pte.pfn)
        assert pte.domain == 0

    def test_page_perm_follows_attach_intent(self, kernel, process):
        name = make_pool(kernel, owner=process.uid)
        attachment = kernel.attach(process, name, Perm.R)
        pte = kernel.ensure_mapped(process, attachment.vma.base)
        assert pte.perm == Perm.R

    def test_fault_outside_any_vma_is_segfault(self, kernel, process):
        with pytest.raises(NotAttachedError):
            kernel.handle_page_fault(process, 0x1234)

    def test_ensure_mapped_is_idempotent(self, kernel, process):
        name = make_pool(kernel)
        attachment = kernel.attach(process, name, Perm.RW)
        first = kernel.ensure_mapped(process, attachment.vma.base)
        second = kernel.ensure_mapped(process, attachment.vma.base)
        assert first is second
        assert kernel.page_faults == 1


class TestPkeyMprotect:
    def test_rewrites_mapped_ptes_and_sets_vma_key(self, kernel, process):
        name = make_pool(kernel)
        attachment = kernel.attach(process, name, Perm.RW)
        base = attachment.vma.base
        for page in range(3):
            kernel.ensure_mapped(process, base + page * 4096)
        rewritten = kernel.pkey_mprotect(process, base, 8 << 20, pkey=5)
        assert rewritten == 3
        assert attachment.vma.pkey == 5
        assert process.page_table.get(vpn_of(base)).pkey == 5

    def test_new_faults_inherit_the_key(self, kernel, process):
        name = make_pool(kernel)
        attachment = kernel.attach(process, name, Perm.RW)
        kernel.pkey_mprotect(process, attachment.vma.base, 8 << 20, pkey=7)
        pte = kernel.ensure_mapped(process, attachment.vma.base + 4096)
        assert pte.pkey == 7

    def test_unmapped_base_rejected(self, kernel, process):
        with pytest.raises(NotAttachedError):
            kernel.pkey_mprotect(process, 0x5000, 4096, pkey=1)
