"""Tests for the round-robin scheduler and multi-threaded traces."""

import pytest

from repro.permissions import Perm
from repro.cpu import trace as tr
from repro.errors import SimulationError
from repro.os.scheduler import RoundRobinScheduler
from repro.sim.simulator import replay_trace
from repro.workloads.base import PerOpPolicy, UnprotectedPolicy, Workspace


def make_ws():
    ws = Workspace(UnprotectedPolicy(), seed=5)
    pool = ws.create_and_attach("p", 8 << 20)
    return ws, pool


class TestScheduling:
    def test_all_tasks_run_to_completion(self):
        ws, _ = make_ws()
        sched = RoundRobinScheduler(ws, quantum=3)

        def task(thread):
            def body():
                for _ in range(10):
                    yield
            return body()

        t1 = sched.spawn(task)
        t2 = sched.spawn(task)
        executed = sched.run()
        assert executed == {t1.tid: 10, t2.tid: 10}

    def test_quantum_bounds_consecutive_steps(self):
        ws, pool = make_ws()
        sched = RoundRobinScheduler(ws, quantum=2)
        order = []

        def task(thread):
            def body():
                for _ in range(4):
                    order.append(thread.tid)
                    yield
            return body()

        a = sched.spawn(task)
        b = sched.spawn(task)
        sched.run()
        assert order == [a.tid, a.tid, b.tid, b.tid,
                         a.tid, a.tid, b.tid, b.tid]

    def test_ctxsw_events_recorded(self):
        ws, _ = make_ws()
        sched = RoundRobinScheduler(ws, quantum=1)

        def task(thread):
            def body():
                yield
                yield
            return body()

        sched.spawn(task)
        sched.spawn(task)
        sched.run()
        trace = ws.finish()
        assert trace.counts().get("ctxsw", 0) == sched.switches
        assert sched.switches >= 3

    def test_uneven_task_lengths(self):
        ws, _ = make_ws()
        sched = RoundRobinScheduler(ws, quantum=2)

        def make(n):
            def task(thread):
                def body():
                    for _ in range(n):
                        yield
                return body()
            return task

        short = sched.spawn(make(1))
        long = sched.spawn(make(9))
        executed = sched.run()
        assert executed[short.tid] == 1
        assert executed[long.tid] == 9

    def test_empty_scheduler_rejected(self):
        ws, _ = make_ws()
        with pytest.raises(SimulationError):
            RoundRobinScheduler(ws).run()

    def test_bad_quantum_rejected(self):
        ws, _ = make_ws()
        with pytest.raises(ValueError):
            RoundRobinScheduler(ws, quantum=0)


class TestMultiThreadedReplay:
    def test_interleaved_threads_replay_cleanly(self):
        """Two threads with private write windows, interleaved by the
        scheduler, replay without faults under every scheme — and the
        shootdown cost scales with the thread count."""
        ws = Workspace(PerOpPolicy(), seed=9)
        pools = [ws.create_and_attach(f"p{i}", 1 << 20) for i in range(24)]
        sched = RoundRobinScheduler(ws, quantum=2)

        def worker(thread):
            def body():
                rng = ws.rng
                for _ in range(30):
                    pool = pools[rng.randrange(len(pools))]
                    oid = pool.pool.pmalloc(64)
                    with ws.operation(thread.tid):
                        ws.mem.write_u64(oid, 0, thread.tid, tid=thread.tid)
                    yield
            return body()

        sched.spawn(worker, ws.process.main_thread)
        sched.spawn(worker)
        # Per-op policy granted R at attach only for then-existing threads;
        # grant the second thread read access too.
        for pool in pools:
            ws.recorder.init_perm(ws.process.threads[1].tid, pool.domain,
                                  Perm.R)
        sched.run()
        trace = ws.finish()
        results = replay_trace(
            trace, ws, ("mpk_virt", "domain_virt", "libmpk"))
        for name in ("mpk_virt", "domain_virt", "libmpk"):
            assert results[name].protection_faults == 0
            assert results[name].context_switches == sched.switches
