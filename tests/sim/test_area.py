"""Tests for the Table VIII area model."""

from repro.sim.area import domain_virt_area, mpk_virt_area
from repro.sim.config import DomainVirtConfig, MPKVirtConfig


class TestTableVIIIValues:
    """The default configuration must reproduce Table VIII exactly."""

    def test_mpk_virt_buffer_is_152_bytes(self):
        assert mpk_virt_area().buffer_bytes_per_core == 152

    def test_dv_buffer_is_24_bytes(self):
        assert domain_virt_area().buffer_bytes_per_core == 24

    def test_dtt_memory_is_256kb(self):
        assert mpk_virt_area().memory_bytes_per_process == 256 << 10

    def test_dv_memory_is_pt_plus_drt(self):
        report = domain_virt_area()
        assert report.memory_bytes_per_process == (256 << 10) + (16 << 10)

    def test_register_counts(self):
        assert mpk_virt_area().registers_per_core == 1
        assert domain_virt_area().registers_per_core == 2

    def test_tlb_extension(self):
        assert mpk_virt_area().tlb_extra_bits_per_entry == 0
        assert domain_virt_area().tlb_extra_bits_per_entry == 6


class TestScaling:
    def test_buffer_scales_with_entries(self):
        small = mpk_virt_area(MPKVirtConfig(dttlb_entries=16))
        large = mpk_virt_area(MPKVirtConfig(dttlb_entries=32))
        assert large.buffer_bytes_per_core == 2 * small.buffer_bytes_per_core

    def test_memory_scales_with_domains_and_threads(self):
        base = mpk_virt_area(max_domains=1024, max_threads=1024)
        more_domains = mpk_virt_area(max_domains=2048, max_threads=1024)
        more_threads = mpk_virt_area(max_domains=1024, max_threads=2048)
        assert more_domains.memory_bytes_per_process == \
            2 * base.memory_bytes_per_process
        assert more_threads.memory_bytes_per_process == \
            2 * base.memory_bytes_per_process

    def test_ptlb_scales(self):
        small = domain_virt_area(DomainVirtConfig(ptlb_entries=16))
        large = domain_virt_area(DomainVirtConfig(ptlb_entries=64))
        assert large.buffer_bytes_per_core == 4 * small.buffer_bytes_per_core

    def test_describe_is_readable(self):
        text = mpk_virt_area().describe()
        assert "152" in text and "256 KB" in text
