"""Tests for the configuration objects (Table II)."""

import dataclasses

import pytest

from repro.sim.config import (DEFAULT_CONFIG, MemoryConfig, SimConfig)


class TestTableIIDefaults:
    """The defaults must match the paper's Table II."""

    def test_processor(self):
        assert DEFAULT_CONFIG.processor.frequency_hz == 2.2e9
        assert DEFAULT_CONFIG.processor.issue_width == 4
        assert DEFAULT_CONFIG.processor.rob_entries == 128

    def test_caches(self):
        assert DEFAULT_CONFIG.cache.l1_size == 32 << 10
        assert DEFAULT_CONFIG.cache.l1_ways == 8
        assert DEFAULT_CONFIG.cache.l1_latency == 1
        assert DEFAULT_CONFIG.cache.l2_size == 1 << 20
        assert DEFAULT_CONFIG.cache.l2_ways == 16
        assert DEFAULT_CONFIG.cache.l2_latency == 8

    def test_memory_latencies_are_3x(self):
        assert DEFAULT_CONFIG.memory.dram_latency == 120
        assert DEFAULT_CONFIG.memory.nvm_latency == 360

    def test_tlb(self):
        assert DEFAULT_CONFIG.tlb.l1_entries == 64
        assert DEFAULT_CONFIG.tlb.l1_ways == 4
        assert DEFAULT_CONFIG.tlb.l2_entries == 1536
        assert DEFAULT_CONFIG.tlb.l2_ways == 6
        assert DEFAULT_CONFIG.tlb.miss_penalty == 30

    def test_mpk_and_virtualization_latencies(self):
        assert DEFAULT_CONFIG.mpk.wrpkru_cycles == 27
        assert DEFAULT_CONFIG.mpk_virt.dttlb_entries == 16
        assert DEFAULT_CONFIG.mpk_virt.dttlb_miss_cycles == 30
        assert DEFAULT_CONFIG.mpk_virt.tlb_invalidation_cycles == 286
        assert DEFAULT_CONFIG.domain_virt.ptlb_entries == 16
        assert DEFAULT_CONFIG.domain_virt.ptlb_access_cycles == 1
        assert DEFAULT_CONFIG.domain_virt.ptlb_miss_cycles == 30


class TestConfigMechanics:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.mpk.wrpkru_cycles = 1  # type: ignore[misc]

    def test_with_overrides_replaces_section(self):
        custom = DEFAULT_CONFIG.with_overrides(
            memory=MemoryConfig(nvm_latency=999))
        assert custom.memory.nvm_latency == 999
        assert DEFAULT_CONFIG.memory.nvm_latency == 360  # untouched
        assert custom.tlb is DEFAULT_CONFIG.tlb

    def test_fresh_config_equals_default(self):
        assert SimConfig() == DEFAULT_CONFIG
