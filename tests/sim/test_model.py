"""Tests validating the analytic model against the simulator."""

import pytest

from repro.sim.config import DEFAULT_CONFIG
from repro.sim.model import (estimate_remap_rate, predict, relative_error)
from repro.sim.simulator import (MULTI_PMO_SCHEMES, replay_trace,
                                 viable_schemes)
from repro.workloads.micro import MicroParams, generate_micro_trace


@pytest.fixture(scope="module")
def measured():
    trace, ws = generate_micro_trace(MicroParams(
        benchmark="rbt", n_pools=128, initial_nodes=48, operations=500))
    return replay_trace(trace, ws, viable_schemes(MULTI_PMO_SCHEMES, 128))


class TestPredictionsMatchSimulation:
    """Given measured event counts, the model must reproduce the charged
    overhead closely — any drift means charging arithmetic changed."""

    def test_lowerbound_exact(self, measured):
        stats = measured["lowerbound"]
        predicted = predict("lowerbound", stats, DEFAULT_CONFIG)
        assert predicted.total == pytest.approx(stats.overhead_cycles)

    def test_mpk_virt_within_15_percent(self, measured):
        stats = measured["mpk_virt"]
        predicted = predict("mpk_virt", stats, DEFAULT_CONFIG)
        overhead = stats.cycles - stats.baseline_cycles
        assert relative_error(predicted.total, overhead) < 0.15

    def test_domain_virt_within_10_percent(self, measured):
        stats = measured["domain_virt"]
        predicted = predict("domain_virt", stats, DEFAULT_CONFIG)
        overhead = stats.cycles - stats.baseline_cycles
        assert relative_error(predicted.total, overhead) < 0.10

    def test_libmpk_within_25_percent(self, measured):
        stats = measured["libmpk"]
        predicted = predict("libmpk", stats, DEFAULT_CONFIG)
        overhead = stats.cycles - stats.baseline_cycles
        assert relative_error(predicted.total, overhead) < 0.25

    def test_unknown_scheme_rejected(self, measured):
        with pytest.raises(KeyError):
            predict("bogus", measured["lowerbound"], DEFAULT_CONFIG)


class TestModelStructure:
    def test_dv_has_no_shootdown_component(self, measured):
        predicted = predict("domain_virt", measured["domain_virt"],
                            DEFAULT_CONFIG)
        assert predicted.shootdowns == 0
        assert predicted.access_latency > 0

    def test_mpkv_shootdowns_dominate(self, measured):
        predicted = predict("mpk_virt", measured["mpk_virt"],
                            DEFAULT_CONFIG)
        assert predicted.shootdowns + predicted.refills > \
            predicted.perm_change

    def test_libmpk_software_component_largest(self, measured):
        predicted = predict("libmpk", measured["libmpk"], DEFAULT_CONFIG)
        assert predicted.software > predicted.shootdowns


class TestRelativeError:
    def test_zero_measured_zero_predicted(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_measured_nonzero_predicted(self):
        assert relative_error(5.0, 0.0) == float("inf")

    def test_symmetric_magnitude(self):
        assert relative_error(90, 100) == pytest.approx(0.1)


class TestRemapRateEstimator:
    def test_fits_in_keys_means_zero(self):
        assert estimate_remap_rate(16, 16, touches_per_op=2.0) == 0.0

    def test_uniform_rate_approaches_miss_probability(self):
        # 64 domains, 16 keys, uniform: miss rate ~ (64-16)/64 = 0.75.
        rate = estimate_remap_rate(64, 16, touches_per_op=1.0,
                                   samples=20_000)
        assert 0.6 < rate < 0.9

    def test_skew_reduces_remaps(self):
        uniform = estimate_remap_rate(256, 16, 1.0, zipf_exponent=0.0,
                                      samples=20_000)
        skewed = estimate_remap_rate(256, 16, 1.0, zipf_exponent=1.2,
                                     samples=20_000)
        assert skewed < uniform

    def test_scales_with_touches(self):
        one = estimate_remap_rate(64, 16, 1.0, samples=10_000)
        three = estimate_remap_rate(64, 16, 3.0, samples=10_000)
        assert three == pytest.approx(3 * one)
