"""Tests for run statistics and overhead accounting."""

import pytest

from repro.sim.stats import OVERHEAD_BUCKETS, RunStats


class TestCharging:
    def test_charge_adds_to_bucket_and_total(self):
        stats = RunStats()
        stats.charge("perm_change", 27)
        stats.charge("perm_change", 27)
        stats.charge("dtt_misses", 30)
        assert stats.buckets["perm_change"] == 54
        assert stats.overhead_cycles == 84
        assert stats.cycles == 84

    def test_unknown_bucket_rejected(self):
        with pytest.raises(KeyError):
            RunStats().charge("bogus", 1)

    def test_all_buckets_initialised(self):
        stats = RunStats()
        assert set(stats.buckets) == set(OVERHEAD_BUCKETS)
        assert all(v == 0 for v in stats.buckets.values())


class TestDerived:
    def test_overhead_percent(self):
        stats = RunStats(baseline_cycles=1000)
        stats.cycles = 1100
        assert stats.overhead_percent() == pytest.approx(10.0)

    def test_overhead_percent_explicit_baseline(self):
        stats = RunStats()
        stats.cycles = 150
        assert stats.overhead_percent(100) == pytest.approx(50.0)

    def test_overhead_without_baseline_rejected(self):
        stats = RunStats()
        stats.cycles = 1
        with pytest.raises(ValueError):
            stats.overhead_percent()

    def test_bucket_percent(self):
        stats = RunStats(baseline_cycles=200)
        stats.charge("access_latency", 20)
        assert stats.bucket_percent("access_latency") == pytest.approx(10.0)

    def test_switches_per_second(self):
        stats = RunStats(baseline_cycles=2.2e9)  # one second of baseline
        stats.perm_switches = 1_000_000
        assert stats.switches_per_second(2.2e9) == pytest.approx(1e6)

    def test_seconds(self):
        stats = RunStats()
        stats.cycles = 4.4e9
        assert stats.seconds(2.2e9) == pytest.approx(2.0)

    def test_summary_mentions_scheme_and_overhead(self):
        stats = RunStats(scheme="domain_virt", baseline_cycles=100)
        stats.cycles = 120
        stats.charge("access_latency", 5)
        text = stats.summary()
        assert "domain_virt" in text
        assert "overhead" in text
        assert "access_latency" in text
