"""Invariants tying ``OVERHEAD_BUCKETS`` to docstring and charge sites.

The Table-VII breakdown is only trustworthy if three things agree: the
``OVERHEAD_BUCKETS`` tuple, the bucket list documented in the
``sim.stats`` module docstring, and the bucket names actually charged
by the schemes.  Each has drifted-silently potential; this module pins
all three together.
"""

import pathlib
import re

from repro.sim import stats as stats_module
from repro.sim.stats import OVERHEAD_BUCKETS, RunStats

SRC = pathlib.Path(stats_module.__file__).resolve().parents[1]

#: ``stats.charge("bucket", ...)`` / ``self.stats.charge('bucket', ...)``
CHARGE_RE = re.compile(r"\.charge\(\s*['\"](\w+)['\"]")

#: ``* ``bucket`` — description`` bullets in the module docstring.
DOCSTRING_BULLET_RE = re.compile(r"^\* ``(\w+)``", re.MULTILINE)


def _charged_buckets():
    charged = {}
    for path in sorted(SRC.rglob("*.py")):
        for name in CHARGE_RE.findall(path.read_text(encoding="utf-8")):
            charged.setdefault(name, []).append(path.name)
    return charged


class TestBucketInvariants:
    def test_default_runstats_has_exactly_the_buckets(self):
        assert set(RunStats().buckets) == set(OVERHEAD_BUCKETS)

    def test_docstring_lists_exactly_the_buckets_in_order(self):
        documented = DOCSTRING_BULLET_RE.findall(stats_module.__doc__)
        assert tuple(documented) == OVERHEAD_BUCKETS, \
            "sim/stats.py docstring bullets drifted from OVERHEAD_BUCKETS"

    def test_every_charge_site_uses_a_known_bucket(self):
        charged = _charged_buckets()
        unknown = set(charged) - set(OVERHEAD_BUCKETS)
        assert not unknown, \
            f"charge() called with undeclared buckets: " \
            f"{ {name: charged[name] for name in unknown} }"

    def test_every_bucket_is_charged_somewhere(self):
        charged = _charged_buckets()
        dead = set(OVERHEAD_BUCKETS) - set(charged)
        assert not dead, f"buckets never charged by any scheme: {dead}"

    def test_charge_accumulates_into_cycles(self):
        stats = RunStats()
        stats.charge(OVERHEAD_BUCKETS[0], 10.0)
        stats.charge(OVERHEAD_BUCKETS[0], 5.0)
        assert stats.buckets[OVERHEAD_BUCKETS[0]] == 15.0
        assert stats.cycles == 15.0
        assert stats.overhead_cycles == 15.0
