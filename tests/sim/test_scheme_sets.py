"""The paper's scheme tuples, as derived from scheme-registry tags."""

from repro.core.schemes import schemes_tagged
from repro.sim.simulator import MULTI_PMO_SCHEMES, SINGLE_PMO_SCHEMES


def test_multi_pmo_schemes_match_the_paper():
    # Figure 6 / Tables VI-VII population, in evaluation order, followed
    # by the four literature competitors in their fixed registry ranks.
    assert MULTI_PMO_SCHEMES == (
        "lowerbound", "libmpk", "mpk_virt", "domain_virt",
        "erim", "pks_seal", "dpti", "poe2")


def test_single_pmo_schemes_match_the_paper():
    # Table V population, in evaluation order.
    assert SINGLE_PMO_SCHEMES == ("mpk", "mpk_virt", "domain_virt")


def test_sets_are_registry_tag_derivations_not_literals():
    assert MULTI_PMO_SCHEMES == schemes_tagged("multi_pmo")
    assert SINGLE_PMO_SCHEMES == schemes_tagged("single_pmo")
