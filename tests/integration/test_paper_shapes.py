"""End-to-end shape assertions: tiny versions of the paper's headline claims.

These run scaled-down experiments (small op counts, few sweep points) and
assert the *qualitative* results the paper reports — who wins, crossover
behaviour, relative factors — not absolute numbers.
"""

import pytest

from repro.sim.simulator import (MULTI_PMO_SCHEMES, SINGLE_PMO_SCHEMES,
                                 overhead_over_lowerbound, replay_trace,
                                 viable_schemes)
from repro.workloads.micro import MicroParams, generate_micro_trace
from repro.workloads.whisper import WhisperParams, generate_whisper_trace

MICRO = dict(initial_nodes=48, operations=400)


def micro_results(benchmark, n_pools):
    trace, ws = generate_micro_trace(
        MicroParams(benchmark=benchmark, n_pools=n_pools, **MICRO))
    return replay_trace(trace, ws, viable_schemes(MULTI_PMO_SCHEMES, n_pools))


@pytest.fixture(scope="module")
def avl_16():
    return micro_results("avl", 16)


@pytest.fixture(scope="module")
def avl_256():
    return micro_results("avl", 256)


class TestFigure6Shape:
    def test_libmpk_worst_at_high_pmo_count(self, avl_256):
        lib = overhead_over_lowerbound(avl_256, "libmpk")
        mpkv = overhead_over_lowerbound(avl_256, "mpk_virt")
        dv = overhead_over_lowerbound(avl_256, "domain_virt")
        assert lib > mpkv > dv > 0

    def test_hardware_mpk_virt_wins_at_16_pmos(self, avl_16):
        """The crossover: at 16 PMOs all domains hold keys, so MPK
        virtualization is near-free while DV still pays the PTLB."""
        mpkv = overhead_over_lowerbound(avl_16, "mpk_virt")
        dv = overhead_over_lowerbound(avl_16, "domain_virt")
        assert mpkv < dv

    def test_no_key_evictions_at_16_pmos(self, avl_16):
        assert avl_16["mpk_virt"].evictions == 0

    def test_overhead_grows_with_pmo_count(self, avl_16, avl_256):
        for scheme in ("libmpk", "mpk_virt"):
            assert overhead_over_lowerbound(avl_256, scheme) > \
                overhead_over_lowerbound(avl_16, scheme)

    def test_dv_never_invalidates_tlb(self, avl_256):
        assert avl_256["domain_virt"].tlb_entries_invalidated == 0

    def test_libmpk_and_mpkv_eviction_counts_similar(self, avl_256):
        """Section VI-B: "almost the same number of evictions"."""
        lib = avl_256["libmpk"].evictions
        mpkv = avl_256["mpk_virt"].evictions
        assert lib > 0
        assert abs(lib - mpkv) / lib < 0.2


class TestFigure7Shape:
    def test_order_of_magnitude_speedups(self, avl_256):
        lib = overhead_over_lowerbound(avl_256, "libmpk")
        mpkv = overhead_over_lowerbound(avl_256, "mpk_virt")
        dv = overhead_over_lowerbound(avl_256, "domain_virt")
        assert lib / mpkv > 4       # paper: ~10x
        assert lib / dv > 15        # paper: ~25-52x
        assert lib / dv > lib / mpkv


class TestTableVIIShape:
    def test_invalidations_dominate_mpkv_breakdown(self, avl_256):
        stats = avl_256["mpk_virt"]
        residual = (stats.cycles - stats.baseline_cycles
                    - stats.overhead_cycles)
        invalidations = stats.buckets["tlb_invalidations"] + max(residual, 0)
        others = (stats.buckets["perm_change"]
                  + stats.buckets["entry_changes"]
                  + stats.buckets["dtt_misses"])
        assert invalidations > others

    def test_dv_breakdown_has_no_invalidations(self, avl_256):
        stats = avl_256["domain_virt"]
        assert stats.buckets["tlb_invalidations"] == 0
        assert stats.buckets["ptlb_misses"] > 0
        assert stats.buckets["access_latency"] > 0

    def test_perm_change_identical_across_schemes(self, avl_256):
        """Both proposed schemes execute the same SETPERMs (Table VII's
        identical first rows)."""
        assert avl_256["mpk_virt"].buckets["perm_change"] == \
            avl_256["domain_virt"].buckets["perm_change"]


class TestTableVShape:
    @pytest.fixture(scope="class")
    def whisper(self):
        trace, ws = generate_whisper_trace(
            WhisperParams(benchmark="hashmap", transactions=200))
        return replay_trace(trace, ws, SINGLE_PMO_SCHEMES)

    def test_single_pmo_mpk_equals_mpk_virt(self, whisper):
        """Table V: one PMO never evicts, so the virtualization adds ~0."""
        mpk = whisper["mpk"].overhead_percent()
        mpkv = whisper["mpk_virt"].overhead_percent()
        assert mpkv == pytest.approx(mpk, rel=0.02)

    def test_domain_virt_slightly_higher(self, whisper):
        mpk = whisper["mpk"].overhead_percent()
        dv = whisper["domain_virt"].overhead_percent()
        assert mpk < dv < mpk * 1.5

    def test_overheads_in_low_single_digits(self, whisper):
        for scheme in SINGLE_PMO_SCHEMES:
            assert 0 < whisper[scheme].overhead_percent() < 10

    def test_no_evictions_with_single_pmo(self, whisper):
        assert whisper["mpk_virt"].evictions == 0


class TestBenchmarkLocalityShapes:
    def test_bt_flatter_than_avl(self):
        """B+ tree's page-local nodes give it a flatter curve (VI-B)."""
        avl = micro_results("avl", 256)
        bt = micro_results("bt", 256)
        assert overhead_over_lowerbound(bt, "mpk_virt") < \
            overhead_over_lowerbound(avl, "mpk_virt")

    def test_ll_has_lowest_switch_rate(self):
        """Table VI: LL's long traversals dilute its switch rate."""
        rates = {}
        for benchmark in ("ll", "ss"):
            trace, ws = generate_micro_trace(MicroParams(
                benchmark=benchmark, n_pools=64, **MICRO))
            results = replay_trace(trace, ws, ("lowerbound",))
            rates[benchmark] = results["lowerbound"].switches_per_second(
                2.2e9, results["baseline"].cycles)
        assert rates["ll"] < rates["ss"]
