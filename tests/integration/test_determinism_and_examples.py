"""Replay determinism properties and smoke tests of the shipped examples."""

import pathlib
import subprocess
import sys

import pytest

from repro.sim.simulator import replay_trace
from repro.workloads.micro import MicroParams, generate_micro_trace

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
TINY = dict(n_pools=12, initial_nodes=12, operations=60)


class TestReplayDeterminism:
    @pytest.fixture(scope="class")
    def generated(self):
        return generate_micro_trace(MicroParams(benchmark="avl", **TINY))

    def test_same_trace_same_cycles(self, generated):
        trace, ws = generated
        first = replay_trace(trace, ws, ("mpk_virt", "domain_virt"))
        second = replay_trace(trace, ws, ("mpk_virt", "domain_virt"))
        for scheme in ("baseline", "mpk_virt", "domain_virt"):
            assert first[scheme].cycles == second[scheme].cycles
            assert first[scheme].tlb_misses == second[scheme].tlb_misses

    def test_replay_does_not_mutate_pool_data(self, generated):
        trace, ws = generated
        pool = next(iter(ws.pools.values())).pool
        before = pool.memory.read(4096, 512)
        replay_trace(trace, ws, ("libmpk",))
        assert pool.memory.read(4096, 512) == before

    def test_end_to_end_regeneration_reproduces_cycles(self):
        params = MicroParams(benchmark="rbt", **TINY)
        t1, ws1 = generate_micro_trace(params)
        t2, ws2 = generate_micro_trace(params)
        r1 = replay_trace(t1, ws1, ("domain_virt",))
        r2 = replay_trace(t2, ws2, ("domain_virt",))
        assert r1["domain_virt"].cycles == r2["domain_virt"].cycles


class TestMultithreadedGeneration:
    def test_threads_interleave_and_replay_clean(self):
        trace, ws = generate_micro_trace(
            MicroParams(benchmark="avl", threads=3, quantum=4, **TINY))
        counts = trace.counts()
        assert counts["ctxsw"] > 3
        results = replay_trace(trace, ws, ("mpk_virt", "domain_virt"))
        assert results["mpk_virt"].protection_faults == 0
        assert results["domain_virt"].protection_faults == 0

    def test_shootdown_cost_scales_with_threads(self):
        def invalidation_cost(threads):
            trace, ws = generate_micro_trace(MicroParams(
                benchmark="ss", n_pools=64, initial_nodes=12,
                operations=120, threads=threads))
            results = replay_trace(trace, ws, ("mpk_virt",))
            stats = results["mpk_virt"]
            return stats.buckets["tlb_invalidations"] / max(
                stats.evictions, 1)

        assert invalidation_cost(3) == pytest.approx(
            3 * invalidation_cost(1), rel=0.01)


@pytest.mark.slow
class TestExamplesRun:
    """Every shipped example must run to completion, quickly."""

    @pytest.mark.parametrize("script,expect", [
        ("quickstart.py", "rogue store blocked"),
        ("secure_server.py", "over-read into client 1's PMO blocked"),
        ("crash_recovery.py", "crash consistency holds"),
        ("sweep_pmos.py", "log2 view"),
        ("key_grouping.py", "0 escalations"),
    ])
    def test_example(self, script, expect):
        args = [sys.executable, str(EXAMPLES / script)]
        if script == "sweep_pmos.py":
            args += ["avl", "120"]
        result = subprocess.run(args, capture_output=True, text=True,
                                timeout=600)
        assert result.returncode == 0, result.stderr
        assert expect in result.stdout
