"""Execute-only memory: jumps into a domain whose data access is disabled.

Section II-B: setting a domain's permission to inaccessible in the PKRU
blocks all data reads and writes, but code can still jump into the domain
and execute — the classic MPK executable-only-memory use case.  The same
holds for both proposed designs (the PTLB's "1x" encoding is
"inaccessible, execute only").
"""

import pytest

from repro.errors import ProtectionFault
from repro.sim.simulator import replay_trace
from repro.workloads.base import UnprotectedPolicy, Workspace

SCHEMES = ("mpk", "mpk_virt", "domain_virt", "libmpk")


def build_code_pmo():
    """A PMO holding 'code', attached with no data permission granted."""
    ws = Workspace(UnprotectedPolicy(), seed=4)
    pool = ws.create_and_attach("libcode", 1 << 20)
    with ws.untraced():
        code = pool.pool.pmalloc(4096, align=4096)
        ws.mem.write_bytes(code, 0, b"\x90" * 64)  # nop sled
    return ws, pool, code


class TestExecuteOnly:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fetches_allowed_without_data_permission(self, scheme):
        ws, pool, code = build_code_pmo()
        for offset in range(0, 64, 8):
            ws.fetch(pool.va_of(code, offset))
        trace = ws.finish()
        results = replay_trace(trace, ws, (scheme,))
        assert results[scheme].protection_faults == 0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_data_read_of_code_still_faults(self, scheme):
        """The point of execute-only memory: code cannot be *read* (e.g.
        to disclose gadgets), only executed."""
        ws, pool, code = build_code_pmo()
        ws.fetch(pool.va_of(code))          # fine
        ws.recorder.load(ws.tid, pool.va_of(code))  # data read: illegal
        trace = ws.finish()
        with pytest.raises(ProtectionFault):
            replay_trace(trace, ws, (scheme,))

    def test_fetch_counts_as_pmo_access_with_memory_latency(self):
        ws, pool, code = build_code_pmo()
        ws.fetch(pool.va_of(code))
        trace = ws.finish()
        results = replay_trace(trace, ws, ())
        assert results["baseline"].pmo_accesses == 1
        # An instruction fetch misses the cold cache: NVM latency applies.
        assert results["baseline"].cycles > 100

    def test_fetch_events_in_histogram(self):
        ws, pool, code = build_code_pmo()
        ws.fetch(pool.va_of(code))
        assert ws.finish().counts()["fetch"] == 1
