"""Tests for trace recording."""

import pytest

from repro.permissions import Perm
from repro.cpu import trace as tr
from repro.errors import TraceError
from repro.os.address_space import VMA


def vma(domain=1):
    return VMA(base=0x2000_0000_0000, reserved=1 << 30, size=8 << 20,
               pmo_id=domain, granule=1 << 30, is_nvm=True)


class TestRecording:
    def test_load_store_events(self):
        rec = tr.TraceRecorder()
        rec.load(1, 0x1000)
        rec.store(1, 0x2000, size=4)
        trace = rec.finish()
        assert trace.events[0][:2] == (tr.LOAD, 1)
        assert trace.events[1][0] == tr.STORE
        assert trace.events[1][4] == 4

    def test_perm_event_carries_domain_and_level(self):
        rec = tr.TraceRecorder()
        rec.perm(2, 7, Perm.RW)
        trace = rec.finish()
        kind, tid, _icount, domain, perm = trace.events[0]
        assert (kind, tid, domain, perm) == (tr.PERM, 2, 7, int(Perm.RW))

    def test_compute_folds_into_next_event(self):
        rec = tr.TraceRecorder()
        rec.compute(100)
        rec.load(1, 0x1000)
        trace = rec.finish()
        assert trace.events[0][2] == 100 + tr.ICOUNT_PER_ACCESS

    def test_total_instructions(self):
        rec = tr.TraceRecorder()
        rec.load(1, 0x1000)
        rec.compute(10)
        rec.store(1, 0x2000)
        trace = rec.finish()
        assert trace.total_instructions == 2 * tr.ICOUNT_PER_ACCESS + 10

    def test_attach_records_side_table(self):
        rec = tr.TraceRecorder()
        region = vma(domain=9)
        rec.attach(9, region, Perm.RW)
        trace = rec.finish()
        assert trace.attach_info[9] == (region, Perm.RW)
        assert trace.events[0][0] == tr.ATTACH

    def test_context_switch_event(self):
        rec = tr.TraceRecorder()
        rec.context_switch(1, 2)
        trace = rec.finish()
        kind, old, _ic, new, _b = trace.events[0]
        assert (kind, old, new) == (tr.CTXSW, 1, 2)

    def test_finish_twice_rejected(self):
        rec = tr.TraceRecorder()
        rec.finish()
        with pytest.raises(TraceError):
            rec.finish()

    def test_emit_after_finish_rejected(self):
        rec = tr.TraceRecorder()
        rec.finish()
        with pytest.raises(TraceError):
            rec.load(1, 0)

    def test_counts_histogram(self):
        rec = tr.TraceRecorder()
        rec.load(1, 0)
        rec.load(1, 8)
        rec.perm(1, 1, Perm.R)
        trace = rec.finish()
        assert trace.counts() == {"load": 2, "perm": 1}

    def test_len_and_label(self):
        rec = tr.TraceRecorder("mylabel")
        rec.load(1, 0)
        trace = rec.finish()
        assert len(trace) == 1
        assert trace.label == "mylabel"
