"""Tests for the trace-replay timing engine."""

import pytest

from repro.permissions import Perm
from repro.core.schemes import NullProtection, scheme_by_name
from repro.cpu.timing import ReplayEngine
from repro.errors import ProtectionFault
from repro.sim.config import DEFAULT_CONFIG
from repro.workloads.base import PerOpPolicy, UnprotectedPolicy, Workspace


def build_workspace(policy=None, pools=2):
    ws = Workspace(policy or UnprotectedPolicy(), seed=1)
    handles = [ws.create_and_attach(f"p{i}", 8 << 20) for i in range(pools)]
    return ws, handles


def replay(ws, trace, scheme="baseline", config=None):
    engine = ReplayEngine(config or DEFAULT_CONFIG, ws.kernel, ws.process,
                          scheme_by_name(scheme))
    return engine.run(trace)


class TestBasicReplay:
    def test_counts_loads_and_stores(self):
        ws, (pool, _) = build_workspace()
        oid = pool.pool.pmalloc(64)
        ws.mem.write_u64(oid, 0, 1)
        ws.mem.read_u64(oid, 0)
        stats = replay(ws, ws.finish())
        assert stats.stores == 1
        assert stats.loads == 1
        assert stats.pmo_accesses == 2

    def test_instruction_accounting(self):
        ws, (pool, _) = build_workspace()
        ws.compute(500)
        ws.mem.write_u64(pool.pool.pmalloc(64), 0, 1)
        trace = ws.finish()
        stats = replay(ws, trace)
        assert stats.instructions == trace.total_instructions

    def test_lowerbound_adds_exactly_wrpkru_per_switch(self):
        ws, handles = build_workspace(PerOpPolicy())
        oid = handles[0].pool.pmalloc(64)
        with ws.operation():
            ws.mem.write_u64(oid, 0, 1)
        trace = ws.finish()
        base = replay(ws, trace)
        lower = replay(ws, trace, "lowerbound")
        switches = lower.perm_switches
        assert switches == 2  # grant + revoke around the operation
        assert lower.cycles - base.cycles == pytest.approx(27 * switches)

    def test_nvm_latency_applied_to_pmo_accesses(self):
        ws, (pool, _) = build_workspace()
        pmo_oid = pool.pool.pmalloc(64)
        ws.mem.read_u64(pmo_oid, 0)
        nvm_stats = replay(ws, ws.finish())

        ws2, _ = build_workspace()
        ws2.stack_access(n=1)  # a DRAM access instead
        dram_stats = replay(ws2, ws2.finish())
        cfg = DEFAULT_CONFIG
        expected_gap = (cfg.memory.nvm_latency - cfg.memory.dram_latency) \
            * cfg.processor.stall_overlap
        assert nvm_stats.cycles - dram_stats.cycles == pytest.approx(
            expected_gap, abs=cfg.tlb.miss_penalty + 5)

    def test_tlb_warmup(self):
        ws, (pool, _) = build_workspace()
        oid = pool.pool.pmalloc(64)
        for _ in range(5):
            ws.mem.read_u64(oid, 0)
        stats = replay(ws, ws.finish())
        assert stats.tlb_misses == 1
        assert stats.tlb_l1_hits == 4


class TestProtectionEnforcement:
    def test_illegal_store_faults(self):
        ws, handles = build_workspace()
        oid = handles[0].pool.pmalloc(64)
        # Write with NO permission instrumentation at all: under an
        # enforcing scheme whose default is inaccessible, this faults.
        ws.mem.write_u64(oid, 0, 1)
        trace = ws.finish()
        with pytest.raises(ProtectionFault) as excinfo:
            replay(ws, trace, "domain_virt")
        assert excinfo.value.domain == handles[0].domain
        assert excinfo.value.is_write

    def test_faults_counted_when_not_enforcing(self):
        ws, handles = build_workspace()
        ws.mem.write_u64(handles[0].pool.pmalloc(64), 0, 1)
        trace = ws.finish()
        config = DEFAULT_CONFIG.with_overrides(enforce_protection=False)
        stats = replay(ws, trace, "domain_virt", config)
        assert stats.protection_faults == 1

    def test_instrumented_trace_replays_clean_everywhere(self):
        ws, handles = build_workspace(PerOpPolicy())
        oid = handles[0].pool.pmalloc(64)
        for _ in range(3):
            with ws.operation():
                ws.mem.write_u64(oid, 0, 7)
                ws.mem.read_u64(oid, 0)
        trace = ws.finish()
        for scheme in ("mpk", "mpk_virt", "domain_virt", "libmpk"):
            stats = replay(ws, trace, scheme)
            assert stats.protection_faults == 0


class TestContextSwitches:
    def test_ctxsw_event_drives_scheme(self):
        ws, handles = build_workspace(PerOpPolicy())
        t2 = ws.process.spawn_thread()
        ws.recorder.init_perm(t2.tid, handles[0].domain, Perm.R)
        ws.recorder.init_perm(t2.tid, handles[1].domain, Perm.R)
        oid = handles[0].pool.pmalloc(64)
        with ws.operation():
            ws.mem.write_u64(oid, 0, 1)
        ws.context_switch(ws.process.main_thread, t2)
        ws.mem.read_u64(oid, 0, tid=t2.tid)
        trace = ws.finish()
        stats = replay(ws, trace, "domain_virt")
        assert stats.context_switches == 1
        assert stats.protection_faults == 0


class TestSchemeOrdering:
    def test_costs_ordered_baseline_lowerbound_hw_libmpk(self):
        """On a many-domain trace the paper's cost ordering must hold."""
        ws, _ = build_workspace(PerOpPolicy(), pools=24)
        handles = list(ws.pools.values())
        oids = [h.pool.pmalloc(64) for h in handles]
        for round_ in range(3):
            for oid in oids:
                with ws.operation():
                    ws.mem.write_u64(oid, 0, round_)
        trace = ws.finish()
        cycles = {name: replay(ws, trace, name).cycles
                  for name in ("baseline", "lowerbound", "domain_virt",
                               "mpk_virt", "libmpk")}
        assert cycles["baseline"] < cycles["lowerbound"]
        assert cycles["lowerbound"] < cycles["domain_virt"]
        assert cycles["domain_virt"] < cycles["mpk_virt"]
        assert cycles["mpk_virt"] < cycles["libmpk"]
