"""Tests for trace serialization (.npz round trips)."""

import pytest

from repro.cpu.tracefile import load_trace, save_trace
from repro.errors import TraceError
from repro.sim.simulator import replay_trace
from repro.workloads.micro import MicroParams, generate_micro_trace


@pytest.fixture(scope="module")
def generated():
    return generate_micro_trace(MicroParams(
        benchmark="ll", n_pools=4, initial_nodes=8, operations=25))


class TestRoundTrip:
    def test_events_identical(self, generated, tmp_path):
        trace, _ws = generated
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.events == trace.events

    def test_metadata_preserved(self, generated, tmp_path):
        trace, _ws = generated
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.label == trace.label
        assert loaded.total_instructions == trace.total_instructions
        assert set(loaded.attach_info) == set(trace.attach_info)

    def test_attach_vmas_reconstructed(self, generated, tmp_path):
        trace, _ws = generated
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        for domain, (vma, intent) in trace.attach_info.items():
            got_vma, got_intent = loaded.attach_info[domain]
            assert (got_vma.base, got_vma.reserved, got_vma.size,
                    got_vma.pmo_id, got_vma.granule, got_vma.is_nvm) == \
                (vma.base, vma.reserved, vma.size, vma.pmo_id,
                 vma.granule, vma.is_nvm)
            assert got_intent == intent

    def test_loaded_trace_replays_identically(self, generated, tmp_path):
        trace, ws = generated
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        original = replay_trace(trace, ws, ("domain_virt",))
        reloaded = replay_trace(loaded, ws, ("domain_virt",))
        assert reloaded["domain_virt"].cycles == \
            original["domain_virt"].cycles

    def test_bad_version_rejected(self, generated, tmp_path):
        import json

        import numpy as np
        trace, _ws = generated
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["version"] = 999
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(TraceError):
            load_trace(path)

    def test_compression_is_effective(self, generated, tmp_path):
        trace, _ws = generated
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        raw_size = len(trace.events) * 5 * 8
        assert path.stat().st_size < raw_size
