"""Differential suite: the fast replay engine vs the reference interpreter.

The array-backed engine (``repro.cpu.fast_timing``) is an optimization,
not a model change — for every scheme and every trace it must produce
**bit-identical** ``RunStats`` (cycles, buckets, counters, marks,
metrics) to the reference interpreter (``repro.cpu.timing``).  These
tests replay real generated traces (micro multi-pool, a datastructure
bench, the multi-tenant service) under both engines and diff the full
result, including the exact float bit patterns of the cycle totals.
"""

import dataclasses

import pytest

from repro.cpu.fast_timing import (FastReplayEngine, fast_replay_enabled,
                                   make_replay_engine)
from repro.cpu.timing import ReplayEngine
from repro.engine.context import ReplayContext, replay_one
from repro.errors import ProtectionFault
from repro.sim.config import DEFAULT_CONFIG
from repro.workloads.base import Workspace
from repro.workloads.micro import MicroParams, generate_micro_trace

SCHEMES = ("baseline", "lowerbound", "mpk", "mpk_virt", "libmpk",
           "domain_virt", "erim", "pks_seal", "dpti", "poe2")

#: Hard-limited schemes that cannot attach one key per tenant at the
#: service trace's scale — the wall is the paper's point, so they are
#: exercised on the micro/datastructure traces instead.
KEY_LIMITED = ("mpk",)


@pytest.fixture(scope="module")
def micro_trace():
    # Multi-pool red-black tree: the paper's headline configuration
    # (8 pools keeps default MPK inside its 15-key budget).
    trace, _ = generate_micro_trace(MicroParams(
        benchmark="rbt", n_pools=8, initial_nodes=24, operations=80))
    return trace


@pytest.fixture(scope="module")
def datastructure_trace():
    trace, _ = generate_micro_trace(MicroParams(
        benchmark="avl", n_pools=4, initial_nodes=24, operations=60))
    return trace


@pytest.fixture(scope="module")
def service_trace():
    from repro.service.params import ServiceParams
    from repro.service.server import generate_service_trace
    trace, _ = generate_service_trace(ServiceParams(
        n_clients=10, n_requests=120))
    return trace


@pytest.fixture(scope="module")
def closed_service_trace():
    # A scheme-keyed closed-loop schedule under bursty arrivals — the
    # dispatch-simulation refactor's new trace shape (and the traces
    # Engine.replay_marked_keyed feeds both engines).
    from repro.service.closed import generate_service_trace_keyed
    from repro.service.params import ServiceParams
    trace, _ = generate_service_trace_keyed(
        ServiceParams(n_clients=6, n_requests=100, arrival="closed",
                      dispatch="replay", pattern="burst"),
        "domain_virt")
    return trace


def _replay_both(monkeypatch, trace, scheme, *, marks=None):
    monkeypatch.setenv("REPRO_FAST", "0")
    ref = replay_one(trace, scheme, marks=marks)
    monkeypatch.setenv("REPRO_FAST", "1")
    fast = replay_one(trace, scheme, marks=marks)
    return ref, fast


def _assert_identical(ref, fast):
    # repr() equality first: catches any last-bit float drift that a
    # plain == would also catch, but with a readable diff on failure.
    assert repr(ref.cycles) == repr(fast.cycles)
    assert {k: repr(v) for k, v in ref.buckets.items()} == \
        {k: repr(v) for k, v in fast.buckets.items()}
    assert dataclasses.asdict(ref) == dataclasses.asdict(fast)


class TestEngineSelection:
    def test_fast_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        assert fast_replay_enabled()

    def test_knob_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "0")
        assert not fast_replay_enabled()

    def _engine_for(self, scheme="baseline"):
        from repro.core.schemes import scheme_by_name
        ws = Workspace(seed=3)
        return make_replay_engine(DEFAULT_CONFIG, ws.kernel, ws.process,
                                  scheme_by_name(scheme))

    def test_selects_fast_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        assert isinstance(self._engine_for(), FastReplayEngine)

    def test_knob_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "0")
        engine = self._engine_for()
        assert isinstance(engine, ReplayEngine)
        assert not isinstance(engine, FastReplayEngine)

    def test_event_tracing_selects_reference(self, monkeypatch):
        # The fast kernels emit no per-event records, so an active event
        # sink must force the reference interpreter.
        from repro import obs
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.setenv("REPRO_EVENTS", "ring")
        obs.reset()
        try:
            engine = self._engine_for()
            assert not isinstance(engine, FastReplayEngine)
        finally:
            monkeypatch.delenv("REPRO_EVENTS")
            obs.reset()


class TestFallbackObservability:
    """A scheme without a fast kernel must fall back *loudly*: a
    one-time RuntimeWarning naming the scheme plus an
    ``engine.fast_fallback`` counter increment."""

    def _undeclared_scheme(self):
        from repro.core.schemes import ProtectionScheme

        class BespokeScheme(ProtectionScheme):
            name = "bespoke_test_scheme"
            cost = None  # no descriptor -> no kernel family

        return BespokeScheme

    def test_every_registered_scheme_has_a_kernel(self):
        from repro.core.schemes import scheme_by_name
        from repro.cpu.fast_timing import supports_fast_replay
        for scheme in SCHEMES:
            if scheme == "baseline":
                continue
            assert supports_fast_replay(DEFAULT_CONFIG,
                                        scheme_by_name(scheme)), scheme

    def test_fallback_warns_once_and_counts(self, monkeypatch):
        import warnings

        from repro import obs
        from repro.cpu import fast_timing

        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.setenv("REPRO_METRICS", "1")
        monkeypatch.setattr(fast_timing, "_warned_fallback", set())
        obs.reset()
        ws = Workspace(seed=3)
        cls = self._undeclared_scheme()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                engine = make_replay_engine(DEFAULT_CONFIG, ws.kernel,
                                            ws.process, cls)
                make_replay_engine(DEFAULT_CONFIG, ws.kernel, ws.process,
                                   cls)
            assert not isinstance(engine, FastReplayEngine)
            warned = [w for w in caught
                      if issubclass(w.category, RuntimeWarning)]
            assert len(warned) == 1  # one-time, not per replay
            assert "bespoke_test_scheme" in str(warned[0].message)
            registry = obs.metrics()
            assert registry is not None
            assert registry.value("engine.fast_fallback") == 2
        finally:
            monkeypatch.delenv("REPRO_METRICS")
            obs.reset()


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_micro(self, monkeypatch, micro_trace, scheme):
        ref, fast = _replay_both(monkeypatch, micro_trace, scheme)
        _assert_identical(ref, fast)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_datastructure(self, monkeypatch, datastructure_trace, scheme):
        ref, fast = _replay_both(monkeypatch, datastructure_trace, scheme)
        _assert_identical(ref, fast)

    @pytest.mark.parametrize("scheme",
                             [s for s in SCHEMES if s not in KEY_LIMITED])
    def test_service(self, monkeypatch, service_trace, scheme):
        # Default MPK cannot attach one key per tenant at this scale —
        # that wall is the paper's point, so mpk is exercised on the
        # micro/datastructure traces instead.  erim's 16-key budget
        # still covers the fixture's 10 tenants, so it stays in.
        ref, fast = _replay_both(monkeypatch, service_trace, scheme)
        _assert_identical(ref, fast)


class TestMarks:
    @pytest.mark.parametrize("scheme", ("baseline", "domain_virt",
                                        "mpk_virt", "libmpk", "erim",
                                        "pks_seal", "dpti", "poe2"))
    def test_mark_cycles_identical(self, monkeypatch, micro_trace, scheme):
        n = len(micro_trace)
        marks = [0, 1, n // 3, n // 2, n - 1]
        ref, fast = _replay_both(monkeypatch, micro_trace, scheme,
                                 marks=marks)
        assert ref.mark_cycles is not None
        assert [repr(c) for c in ref.mark_cycles] == \
            [repr(c) for c in fast.mark_cycles]
        _assert_identical(ref, fast)


    @pytest.mark.parametrize("scheme", ("baseline", "domain_virt",
                                        "mpk_virt", "libmpk", "pks_seal",
                                        "dpti", "poe2"))
    def test_marked_closed_loop_service(self, monkeypatch,
                                        closed_service_trace, scheme):
        # The marks the service accounting consumes: every batch's
        # window-close boundary, on the keyed closed-loop trace.
        from repro.service.server import batch_boundaries
        marks = batch_boundaries(closed_service_trace)
        assert marks
        ref, fast = _replay_both(monkeypatch, closed_service_trace,
                                 scheme, marks=marks)
        assert [repr(c) for c in ref.mark_cycles] == \
            [repr(c) for c in fast.mark_cycles]
        _assert_identical(ref, fast)


class TestMetricsParity:
    @pytest.mark.parametrize("scheme", ("domain_virt", "mpk_virt",
                                        "libmpk", "pks_seal", "poe2"))
    def test_harvested_metrics_match(self, monkeypatch, micro_trace,
                                     scheme):
        from repro import obs
        monkeypatch.setenv("REPRO_METRICS", "1")
        obs.reset()
        try:
            ref, fast = _replay_both(monkeypatch, micro_trace, scheme)
        finally:
            monkeypatch.delenv("REPRO_METRICS")
            obs.reset()
        assert ref.metrics is not None
        assert fast.metrics is not None
        assert ref.metrics == fast.metrics
        assert repr(ref.cycles) == repr(fast.cycles)


class TestProtectionFaultParity:
    def _violating_trace(self):
        # An uninstrumented write: every enforcing scheme must fault.
        ws = Workspace(seed=5)
        handle = ws.create_and_attach("p0", 8 << 20)
        oid = handle.pool.pmalloc(64)
        ws.mem.write_u64(oid, 0, 1)
        return ws.finish()

    @pytest.mark.parametrize("scheme", ("domain_virt", "mpk_virt",
                                        "libmpk", "mpk", "erim",
                                        "pks_seal", "dpti", "poe2"))
    def test_same_fault(self, monkeypatch, scheme):
        trace = self._violating_trace()
        monkeypatch.setenv("REPRO_FAST", "0")
        with pytest.raises(ProtectionFault) as ref:
            replay_one(trace, scheme)
        monkeypatch.setenv("REPRO_FAST", "1")
        with pytest.raises(ProtectionFault) as fast:
            replay_one(trace, scheme)
        assert str(ref.value) == str(fast.value)
        for attr in ("vaddr", "domain", "thread", "is_write"):
            assert getattr(ref.value, attr) == getattr(fast.value, attr)

    @pytest.mark.parametrize("scheme", ("domain_virt", "mpk_virt",
                                        "libmpk", "erim", "dpti"))
    def test_unenforced_run_identical(self, monkeypatch, scheme):
        # With enforcement off the run completes, counting the faults —
        # and completed runs are bit-identical under both engines.
        trace = self._violating_trace()
        config = DEFAULT_CONFIG.with_overrides(enforce_protection=False)
        monkeypatch.setenv("REPRO_FAST", "0")
        ref = replay_one(trace, scheme, config)
        monkeypatch.setenv("REPRO_FAST", "1")
        fast = replay_one(trace, scheme, config)
        assert ref.protection_faults > 0
        _assert_identical(ref, fast)


class TestRepeatedUse:
    def test_cached_analysis_is_stable(self, monkeypatch, micro_trace):
        # The radiograph and penalty streams are cached on the trace's
        # column store; repeated replays must keep returning identical
        # results (no cross-replay state leak).
        monkeypatch.setenv("REPRO_FAST", "1")
        first = replay_one(micro_trace, "domain_virt")
        second = replay_one(micro_trace, "domain_virt")
        _assert_identical(first, second)

    def test_context_reuse_matches_fresh_context(self, monkeypatch,
                                                 micro_trace):
        monkeypatch.setenv("REPRO_FAST", "1")
        fresh = replay_one(micro_trace, "libmpk")
        context = ReplayContext.from_trace(micro_trace)
        rebuilt = context.replay(micro_trace, "libmpk")
        _assert_identical(fresh, rebuilt)
