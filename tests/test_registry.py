"""The plugin-registry seam: registration, discovery, tags, errors.

Also pins the paper's scheme tuples — they are *derived* from registry
tags now, so these tests are the contract that the derivation still
produces exactly the sets the paper's tables use.
"""

import pytest

import repro.registry as registry_module
from repro.core.schemes import scheme_by_name, schemes_tagged
from repro.registry import Registry, RegistryKeyError
from repro.service.arrivals import (discipline_by_name, discipline_names,
                                    pattern_by_name, pattern_names)
from repro.sim.simulator import MULTI_PMO_SCHEMES, SINGLE_PMO_SCHEMES
from repro.workloads.families import workload_by_name, workload_names


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")

        @reg.register("a")
        def plugin():
            return 1

        assert reg.get("a") is plugin
        assert "a" in reg
        assert "b" not in reg
        assert reg.names() == ["a"]
        assert reg.items() == [("a", plugin)]

    def test_unknown_name_lists_the_roster(self):
        reg = Registry("widget")
        reg.register("alpha")(object())
        reg.register("beta")(object())
        with pytest.raises(RegistryKeyError) as err:
            reg.get("gamma")
        message = str(err.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha, beta" in message
        assert "REPRO_PLUGINS" in message  # points at the extension seam
        assert isinstance(err.value, KeyError)

    def test_duplicate_name_different_object_rejected(self):
        reg = Registry("widget")
        reg.register("a")(object())
        with pytest.raises(ValueError, match="duplicate widget 'a'"):
            reg.register("a")(object())

    def test_reregistering_the_same_object_is_idempotent(self):
        # Module reloads re-run decorators; same object must be fine.
        reg = Registry("widget")
        obj = object()
        reg.register("a")(obj)
        reg.register("a")(obj)
        assert reg.get("a") is obj

    def test_tagged_orders_by_rank_then_name(self):
        reg = Registry("widget")
        reg.register("c", tags={"t": 0})(object())
        reg.register("a", tags={"t": 2})(object())
        reg.register("b", tags={"t": 1, "u": 0})(object())
        assert reg.tagged("t") == ("c", "b", "a")
        assert reg.tagged("u") == ("b",)
        assert reg.tagged("missing") == ()
        assert reg.tags_of("b") == {"t": 1, "u": 0}

    def test_discovery_runs_once_and_only_on_lookup(self, monkeypatch):
        imported = []
        monkeypatch.setattr(registry_module, "_import_once", imported.append)
        monkeypatch.setattr(registry_module, "load_external_plugins",
                            lambda: None)
        reg = Registry("widget", discover=("mod.a", "mod.b"))
        reg.register("x")(object())
        assert imported == []  # registering never triggers discovery
        reg.names()
        reg.names()
        assert imported == ["mod.a", "mod.b"]  # first lookup, exactly once


class TestPaperSchemeSets:
    """Satellite contract: the registry-tag-derived tuples must equal
    the paper's scheme sets, in evaluation order."""

    def test_multi_pmo_set_matches_the_paper(self):
        assert MULTI_PMO_SCHEMES == (
            "lowerbound", "libmpk", "mpk_virt", "domain_virt",
            "erim", "pks_seal", "dpti", "poe2")

    def test_single_pmo_set_matches_the_paper(self):
        assert SINGLE_PMO_SCHEMES == ("mpk", "mpk_virt", "domain_virt")

    def test_tuples_are_derived_from_registry_tags(self):
        assert MULTI_PMO_SCHEMES == schemes_tagged("multi_pmo")
        assert SINGLE_PMO_SCHEMES == schemes_tagged("single_pmo")


class TestBuiltinRegistries:
    def test_unknown_scheme_lists_registered_schemes(self):
        with pytest.raises(KeyError) as err:
            scheme_by_name("sgx")
        assert "domain_virt" in str(err.value)

    def test_unknown_workload_family_lists_families(self):
        with pytest.raises(KeyError) as err:
            workload_by_name("macro")
        assert "micro" in str(err.value)
        assert set(workload_names()) >= {"micro", "whisper", "service"}

    def test_unknown_arrival_pattern_lists_patterns(self):
        with pytest.raises(KeyError) as err:
            pattern_by_name("flash-crowd")
        assert "poisson" in str(err.value)
        assert set(pattern_names()) == {"burst", "churn", "diurnal",
                                        "poisson", "waves"}

    def test_unknown_arrival_discipline_lists_disciplines(self):
        with pytest.raises(KeyError) as err:
            discipline_by_name("batch")
        assert "closed" in str(err.value)
        assert set(discipline_names()) == {"open", "closed"}

    def test_service_params_surface_the_roster_on_bad_pattern(self):
        from repro.service import ServiceParams
        with pytest.raises(ValueError) as err:
            ServiceParams(pattern="tide")
        assert "burst" in str(err.value)
