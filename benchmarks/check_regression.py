#!/usr/bin/env python
"""CI throughput-regression gate for the simulator micro-benchmarks.

Compares freshly generated bench results (``BENCH_engine.json``,
``BENCH_service.json``) against committed baselines and fails (exit 1)
when any benchmark's ``events_per_s`` dropped by more than the threshold
(default 30%, generous enough to absorb shared-runner noise while still
catching a real slowdown — the kind of accidental O(n^2) or de-inlining
that costs 2x, not 1.1x).

Usage::

    python benchmarks/check_regression.py BASELINE CURRENT \
        [BASELINE2 CURRENT2 ...] [--threshold 0.30]

Each positional pair is gated independently with one shared threshold.
In CI the committed files *are* the baselines, so the workflow snapshots
them before the bench run overwrites them::

    git show HEAD:benchmarks/out/BENCH_engine.json > /tmp/engine.json
    git show HEAD:benchmarks/out/BENCH_service.json > /tmp/service.json
    PYTHONPATH=src python -m pytest -q benchmarks/bench_engine_throughput.py \
        benchmarks/bench_service.py
    python benchmarks/check_regression.py \
        /tmp/engine.json benchmarks/out/BENCH_engine.json \
        /tmp/service.json benchmarks/out/BENCH_service.json

Improvements and new benchmarks never fail the gate; a benchmark that
*disappeared* from the current results does (a silently skipped bench
would otherwise hide exactly the regressions the gate exists to catch).
After an intentional change, refresh a baseline by committing the
regenerated ``benchmarks/out/BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_THRESHOLD = 0.30


def load_results(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    results = data.get("results", {})
    if not isinstance(results, dict):
        raise SystemExit(f"error: {path}: 'results' is not an object")
    return results


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures = []
    for name in sorted(baseline):
        base = (baseline[name] or {}).get("events_per_s")
        if not base:
            continue  # unmeasured baseline entry constrains nothing
        entry = current.get(name)
        if entry is None:
            failures.append(f"{name}: present in baseline but missing "
                            f"from current results")
            continue
        cur = entry.get("events_per_s")
        if not cur:
            failures.append(f"{name}: current run recorded no throughput")
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {cur:,.0f} events/s is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline {base:,.0f} "
                f"(threshold {threshold * 100:.0f}%)")
        print(f"  {name:<28} {base:>12,.0f} -> {cur:>12,.0f} ev/s "
              f"({ratio:+.0%} of baseline)  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<28} (new benchmark, not gated)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when bench throughput regressed vs a baseline")
    parser.add_argument("paths", type=pathlib.Path, nargs="+",
                        metavar="BASELINE CURRENT",
                        help="one or more committed/freshly-generated "
                             "result-file pairs")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop in events_per_s "
                             "(default %(default)s)")
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")
    if len(args.paths) % 2 != 0:
        parser.error("paths must come in BASELINE CURRENT pairs")

    failures = []
    for i in range(0, len(args.paths), 2):
        baseline, current = args.paths[i], args.paths[i + 1]
        print(f"throughput gate: {current} vs baseline {baseline} "
              f"(allowed drop {args.threshold * 100:.0f}%)")
        failures.extend(compare(load_results(baseline),
                                load_results(current), args.threshold))
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nOK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
