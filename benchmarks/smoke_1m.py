#!/usr/bin/env python
"""Million-request scale smoke: generate + replay + account end to end.

Drives the full scale target from the ROADMAP — one million requests
from 64 Zipfian clients over 256 worker slots — through the streaming
columnar pipeline: vectorized traffic synthesis, the static planner's
columnar fast path, chunked trace emission, marked fast-path replay, and
column-store latency accounting.  Prints per-stage wall times and
enforces a peak-RSS ceiling so the scale capability (and its memory
behaviour) cannot silently regress.

Usage::

    PYTHONPATH=src python benchmarks/smoke_1m.py [--requests N]
        [--workers N] [--clients N] [--rss-ceiling-mb MB] [--no-replay]

``REPRO_SMOKE=1`` shrinks the run 20x (50k requests) for quick local
iteration; CI runs the full size.  ``--no-replay`` stops after
generation + plan accounting structures, for machines where the marked
replay's minutes-long bit-exact walk is not worth the wait.
"""

import argparse
import os
import resource
import sys
import time


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (Linux: KiB)."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        return usage / (1024 * 1024)
    return usage / 1024


def main() -> int:
    smoke = bool(os.environ.get("REPRO_SMOKE"))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int,
                        default=50_000 if smoke else 1_000_000)
    parser.add_argument("--workers", type=int, default=256)
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--rss-ceiling-mb", type=float, default=6144.0)
    parser.add_argument("--no-replay", action="store_true")
    args = parser.parse_args()

    from repro.engine import replay_one
    from repro.service import (ServiceParams, account, batch_boundaries,
                               build_plan)
    from repro.service.server import ServiceWorkload
    from repro.sim.config import DEFAULT_CONFIG

    params = ServiceParams(n_clients=args.clients,
                           n_requests=args.requests,
                           workers=args.workers)
    print(f"smoke_1m: {args.requests:,} requests, {args.workers} workers, "
          f"{args.clients} clients (REPRO_SMOKE={'1' if smoke else '0'})")

    t0 = time.perf_counter()
    plan = build_plan(params)
    t1 = time.perf_counter()
    workload = ServiceWorkload(params)
    workload.serve(plan)
    trace = workload.finish()
    t2 = time.perf_counter()
    events = len(trace)
    print(f"  plan      {t1 - t0:8.2f}s  "
          f"({plan.n_served:,} served, {plan.columns.n_batches:,} batches)")
    print(f"  generate  {t2 - t1:8.2f}s  "
          f"({events:,} events, {events / (t2 - t1):,.0f} ev/s)")

    if not args.no_replay:
        marks = batch_boundaries(trace)
        t3 = time.perf_counter()
        stats = replay_one(trace, "domain_virt", marks=marks)
        t4 = time.perf_counter()
        print(f"  replay    {t4 - t3:8.2f}s  "
              f"({events / (t4 - t3):,.0f} ev/s, domain_virt, "
              f"{len(marks):,} marks)")
        summary = account(plan, trace, stats,
                          frequency_hz=DEFAULT_CONFIG.processor
                          .frequency_hz)
        t5 = time.perf_counter()
        print(f"  account   {t5 - t4:8.2f}s  "
              f"(p99 {summary.p99:,.0f} cyc, "
              f"{summary.throughput_rps:,.0f} rps)")
        if summary.n_served != plan.n_served:
            print(f"FAIL: accounted {summary.n_served:,} served requests, "
                  f"plan has {plan.n_served:,}")
            return 1

    rss = peak_rss_mb()
    print(f"  peak RSS  {rss:8.0f} MiB (ceiling "
          f"{args.rss_ceiling_mb:,.0f} MiB)")
    if rss > args.rss_ceiling_mb:
        print(f"FAIL: peak RSS {rss:.0f} MiB exceeds the "
              f"{args.rss_ceiling_mb:,.0f} MiB ceiling")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
