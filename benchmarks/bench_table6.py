"""Benchmark regenerating Table VI (multi-PMO lowerbound overheads)."""

from repro.experiments.table6 import report_table6


def test_table6(benchmark, runner, save_report):
    report = benchmark.pedantic(
        lambda: report_table6(runner), rounds=1, iterations=1)
    save_report("table6", report)
