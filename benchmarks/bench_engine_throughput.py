"""True micro-benchmarks of the simulator itself (multi-round timings).

Unlike the table/figure benches (one-shot experiment regeneration), these
use pytest-benchmark's statistics to track the replay engine's and trace
generator's throughput — the quantities that bound how large a
configuration the reproduction can simulate.

Besides the human-readable pytest-benchmark output, the module collects
every timing into ``benchmarks/out/BENCH_engine.json`` (events per
benchmark, mean and best-round seconds, derived events/second) so CI
and tooling can track throughput without parsing terminal output.
``events_per_s`` derives from the *best* round, not the mean: the best
round is the least noise-contaminated estimate of what the code can do
(scheduler preemption and cache pollution only ever slow a round down),
which is what ``benchmarks/check_regression.py`` compares across
commits.
"""

import json
import pathlib

import pytest

# Timed rounds run with the cyclic GC off: collection pauses otherwise
# land inside individual rounds as multi-millisecond outliers, and the
# replay engine's throughput — not the allocator's — is what these
# benches track.
pytestmark = pytest.mark.benchmark(disable_gc=True)

from repro.engine import replay_one
from repro.workloads.micro import MicroParams, generate_micro_trace

PARAMS = MicroParams(benchmark="rbt", n_pools=32, initial_nodes=48,
                     operations=300)
#: erim hard-faults past its 16-key space (docs/SCHEMES.md), so its
#: replay bench runs the same workload shrunk to fit the budget.
PARAMS_ERIM = MicroParams(benchmark="rbt", n_pools=16, initial_nodes=48,
                          operations=300)

#: Accumulated machine-readable results, flushed by the module fixture.
_RESULTS = {}


@pytest.fixture(scope="module")
def generated():
    return generate_micro_trace(PARAMS)


@pytest.fixture(scope="module")
def generated_erim():
    return generate_micro_trace(PARAMS_ERIM)


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Write BENCH_engine.json after all benches in this module ran."""
    yield
    out_dir = pathlib.Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "BENCH_engine.json"
    path.write_text(json.dumps(
        {"params": {"benchmark": PARAMS.benchmark,
                    "n_pools": PARAMS.n_pools,
                    "operations": PARAMS.operations},
         "params_erim": {"benchmark": PARAMS_ERIM.benchmark,
                         "n_pools": PARAMS_ERIM.n_pools,
                         "operations": PARAMS_ERIM.operations},
         "results": _RESULTS}, indent=2, sort_keys=True) + "\n")
    print(f"\n[machine-readable results saved to {path}]")


def _record(name: str, benchmark, events: int) -> None:
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean_s = getattr(stats, "mean", None) if stats is not None else None
    min_s = getattr(stats, "min", None) if stats is not None else None
    _RESULTS[name] = {
        "events": events,
        "mean_s": mean_s,
        "min_s": min_s,
        "events_per_s": (events / min_s if min_s else None),
    }


@pytest.mark.parametrize("scheme", ["baseline", "mpk_virt", "domain_virt",
                                    "libmpk", "dpti"])
def test_replay_throughput(benchmark, generated, scheme):
    trace, _ws = generated

    def replay():
        # Isolated-context replay: the same path the experiment engine
        # and its parallel workers execute.
        return replay_one(trace, scheme)

    # One warmup round absorbs per-trace one-time analysis (the fast
    # engine's trace radiograph is computed once and cached on the trace
    # columns); measured rounds then reflect the steady-state throughput
    # a scheme sweep actually pays — every sweep replays one trace many
    # times.
    stats = benchmark.pedantic(replay, rounds=5, iterations=1,
                               warmup_rounds=1)
    assert stats.instructions > 0
    benchmark.extra_info["events"] = len(trace)
    _record(f"replay:{scheme}", benchmark, len(trace))


def test_replay_throughput_erim(benchmark, generated_erim):
    """erim on the in-budget trace — tracks the 'mpk' fused kernel
    family with the call-gate envelope (see test_replay_throughput for
    the warmup rationale)."""
    trace, _ws = generated_erim

    def replay():
        return replay_one(trace, "erim")

    stats = benchmark.pedantic(replay, rounds=5, iterations=1,
                               warmup_rounds=1)
    assert stats.instructions > 0
    benchmark.extra_info["events"] = len(trace)
    _record("replay:erim", benchmark, len(trace))


def test_trace_generation_throughput(benchmark):
    trace, _ws = benchmark.pedantic(
        lambda: generate_micro_trace(PARAMS), rounds=5, iterations=1)
    assert len(trace) > 0
    _record("generate:micro-rbt", benchmark, len(trace))
