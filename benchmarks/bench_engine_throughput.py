"""True micro-benchmarks of the simulator itself (multi-round timings).

Unlike the table/figure benches (one-shot experiment regeneration), these
use pytest-benchmark's statistics to track the replay engine's and trace
generator's throughput — the quantities that bound how large a
configuration the reproduction can simulate.
"""

import pytest

from repro.core.schemes import scheme_by_name
from repro.cpu.timing import ReplayEngine
from repro.sim.config import DEFAULT_CONFIG
from repro.workloads.micro import MicroParams, generate_micro_trace

PARAMS = MicroParams(benchmark="rbt", n_pools=32, initial_nodes=48,
                     operations=300)


@pytest.fixture(scope="module")
def generated():
    return generate_micro_trace(PARAMS)


@pytest.mark.parametrize("scheme", ["baseline", "mpk_virt", "domain_virt",
                                    "libmpk"])
def test_replay_throughput(benchmark, generated, scheme):
    trace, ws = generated
    cls = scheme_by_name(scheme)

    def replay():
        return ReplayEngine(DEFAULT_CONFIG, ws.kernel, ws.process, cls) \
            .run(trace)

    stats = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert stats.instructions > 0
    benchmark.extra_info["events"] = len(trace)


def test_trace_generation_throughput(benchmark):
    trace, _ws = benchmark.pedantic(
        lambda: generate_micro_trace(PARAMS), rounds=3, iterations=1)
    assert len(trace) > 0
