"""Benchmark regenerating Table V (single-PMO WHISPER overheads)."""

from repro.experiments.table5 import report_table5


def test_table5(benchmark, runner, save_report):
    report = benchmark.pedantic(
        lambda: report_table5(runner), rounds=1, iterations=1)
    save_report("table5", report)
