"""Benchmark comparing the analytic model against the full simulation.

For each scheme, the closed-form prediction (from measured event counts)
is compared with the simulated overhead — a consistency audit of the
charging arithmetic, reported as a table of relative errors.
"""

from repro.experiments.reporting import format_table
from repro.sim.config import DEFAULT_CONFIG
from repro.sim.model import predict, relative_error
from repro.sim.simulator import (MULTI_PMO_SCHEMES, replay_trace,
                                 viable_schemes)
from repro.workloads.micro import MicroParams, generate_micro_trace

SCHEMES = ("lowerbound", "mpk_virt", "domain_virt", "libmpk")


def test_model_vs_simulation(benchmark, save_report):
    def run():
        rows = []
        for bench in ("avl", "bt", "ss"):
            trace, ws = generate_micro_trace(MicroParams(
                benchmark=bench, n_pools=256, operations=1000))
            results = replay_trace(trace, ws,
                                   viable_schemes(MULTI_PMO_SCHEMES, 256))
            for scheme in SCHEMES:
                stats = results[scheme]
                measured = stats.cycles - stats.baseline_cycles
                predicted = predict(scheme, stats, DEFAULT_CONFIG)
                rows.append([
                    bench, scheme, measured, predicted.total,
                    100 * relative_error(predicted.total, measured)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("model_vs_sim", format_table(
        "Analytic model vs simulation (overhead cycles, 256 PMOs)",
        ["Benchmark", "Scheme", "Simulated", "Predicted", "Error %"],
        rows))
    # The model must track the simulator within 25% on every point.
    assert all(row[4] < 25 for row in rows), rows
