"""Benchmark regenerating Figure 6 (overhead vs number of PMOs)."""

from repro.experiments.figure6 import report_figure6


def test_figure6(benchmark, runner, save_report):
    report = benchmark.pedantic(
        lambda: report_figure6(runner), rounds=1, iterations=1)
    save_report("figure6", report)
