"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation reruns the AVL microbenchmark at 256 PMOs under one
modified configuration and reports how the three schemes' overheads move:

* PTLB size (8 / 16 / 32 entries) — how much of DV's cost is PTLB misses;
* DTTLB size — ditto for MPK virtualization's DTT walks;
* usable protection keys (15 vs 16) — Linux-style reserved key 0 vs the
  paper's full 16-key pool;
* NVM latency (DRAM-equal vs 3x vs 6x) — how the substrate latency scales
  the *relative* results;
* TLB shootdown cost sensitivity (143 / 286 / 572 cycles).
"""

from dataclasses import replace

from repro.experiments.reporting import format_table
from repro.sim.config import DEFAULT_CONFIG, MemoryConfig
from repro.sim.simulator import (MULTI_PMO_SCHEMES, overhead_over_lowerbound,
                                 replay_trace, viable_schemes)
from repro.workloads.micro import MicroParams, generate_micro_trace

N_POOLS = 256
SCHEMES = ("libmpk", "mpk_virt", "domain_virt")


def _trace():
    params = MicroParams(benchmark="avl", n_pools=N_POOLS, operations=1200)
    return generate_micro_trace(params)


def _overheads(trace, ws, config):
    results = replay_trace(trace, ws,
                           viable_schemes(MULTI_PMO_SCHEMES, N_POOLS),
                           config)
    return [overhead_over_lowerbound(results, s) for s in SCHEMES]


def _run_ablation(variants):
    trace, ws = _trace()
    rows = []
    for label, config in variants:
        rows.append([label] + _overheads(trace, ws, config))
    return rows


def test_ablation_ptlb_size(benchmark, save_report):
    def run():
        cfg = DEFAULT_CONFIG
        variants = [
            (f"PTLB {entries} entries",
             cfg.with_overrides(domain_virt=replace(cfg.domain_virt,
                                                    ptlb_entries=entries)))
            for entries in (8, 16, 32)]
        return _run_ablation(variants)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_ptlb", format_table(
        f"Ablation: PTLB size (AVL, {N_POOLS} PMOs, % over lowerbound)",
        ["Variant"] + list(SCHEMES), rows))
    dv = [row[3] for row in rows]
    assert dv[0] >= dv[1] >= dv[2]  # bigger PTLB, cheaper DV


def test_ablation_dttlb_size(benchmark, save_report):
    def run():
        cfg = DEFAULT_CONFIG
        variants = [
            (f"DTTLB {entries} entries",
             cfg.with_overrides(mpk_virt=replace(cfg.mpk_virt,
                                                 dttlb_entries=entries)))
            for entries in (8, 16, 32)]
        return _run_ablation(variants)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_dttlb", format_table(
        f"Ablation: DTTLB size (AVL, {N_POOLS} PMOs, % over lowerbound)",
        ["Variant"] + list(SCHEMES), rows))


def test_ablation_usable_keys(benchmark, save_report):
    def run():
        cfg = DEFAULT_CONFIG
        variants = []
        for keys in (15, 16):
            variant = cfg.with_overrides(
                mpk_virt=replace(cfg.mpk_virt, usable_keys=keys),
                libmpk=replace(cfg.libmpk, usable_keys=keys))
            variants.append((f"{keys} usable keys", variant))
        return _run_ablation(variants)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_keys", format_table(
        f"Ablation: protection-key pool (AVL, {N_POOLS} PMOs, "
        "% over lowerbound)", ["Variant"] + list(SCHEMES), rows))


def test_ablation_nvm_latency(benchmark, save_report):
    def run():
        cfg = DEFAULT_CONFIG
        variants = [
            (f"NVM {latency} cycles",
             cfg.with_overrides(memory=MemoryConfig(nvm_latency=latency)))
            for latency in (120, 360, 720)]
        return _run_ablation(variants)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_nvm", format_table(
        f"Ablation: NVM latency (AVL, {N_POOLS} PMOs, % over lowerbound)",
        ["Variant"] + list(SCHEMES), rows))
    # Slower NVM inflates the baseline, shrinking relative overheads.
    libmpk = [row[1] for row in rows]
    assert libmpk[0] > libmpk[2]


def test_ablation_shootdown_cost(benchmark, save_report):
    def run():
        cfg = DEFAULT_CONFIG
        variants = [
            (f"shootdown {cycles} cycles",
             cfg.with_overrides(
                 mpk_virt=replace(cfg.mpk_virt,
                                  tlb_invalidation_cycles=cycles),
                 libmpk=replace(cfg.libmpk,
                                tlb_invalidation_cycles=cycles)))
            for cycles in (143, 286, 572)]
        return _run_ablation(variants)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_shootdown", format_table(
        f"Ablation: TLB shootdown cost (AVL, {N_POOLS} PMOs, "
        "% over lowerbound)", ["Variant"] + list(SCHEMES), rows))
    mpkv = [row[2] for row in rows]
    assert mpkv[0] < mpkv[2]  # MPKV scales with shootdown cost
    dv = [row[3] for row in rows]
    assert abs(dv[0] - dv[2]) / dv[1] < 0.05  # DV is insensitive
