"""Benchmark regenerating Table VII (overhead breakdown at 1024 PMOs)."""

from repro.experiments.table7 import report_table7


def test_table7(benchmark, runner, save_report):
    report = benchmark.pedantic(
        lambda: report_table7(runner), rounds=1, iterations=1)
    save_report("table7", report)
