"""Benchmarks regenerating the static tables (II and VIII)."""

from repro.experiments.table2 import report_table2
from repro.experiments.table8 import report_table8


def test_table2(benchmark, save_report):
    report = benchmark.pedantic(report_table2, rounds=1, iterations=1)
    save_report("table2", report)


def test_table8(benchmark, save_report):
    report = benchmark.pedantic(report_table8, rounds=1, iterations=1)
    save_report("table8", report)
