"""Benchmark regenerating Figure 7 (average overheads + libmpk speedups)."""

from repro.experiments.figure7 import report_figure7


def test_figure7(benchmark, runner, save_report):
    report = benchmark.pedantic(
        lambda: report_figure7(runner), rounds=1, iterations=1)
    save_report("figure7", report)
