"""Micro-benchmarks of the service layer (multi-round timings).

Times the three stages a service experiment pays for — trace generation
(traffic + batching + server execution), marked replay under the paper's
schemes, and latency accounting — at a fixed 64-client configuration.

Cell sizes are chosen so each entry measures its pipeline's streaming
throughput rather than fixed setup cost: generation cells run tens of
thousands of requests (the columnar synthesis and the chunked trace
emitter amortize workspace setup within the first few thousand), and
``generate:service-1m`` drives the full million-request, 256-worker
configuration the scale work targets (``REPRO_SMOKE=1`` shrinks it for
constrained runs; docs/PERFORMANCE.md "Streaming generation").

Besides the pytest-benchmark output, every timing lands in
``benchmarks/out/BENCH_service.json`` together with the serving-level
results (p99 latency, throughput) so CI can track both simulator speed
and modelled server performance from one artifact.
"""

import json
import os
import pathlib
from dataclasses import replace

import pytest

from repro.engine import replay_one
from repro.service import (ServiceParams, account, account_sharded,
                           batch_boundaries, build_plan,
                           generate_service_trace,
                           generate_service_trace_keyed, shard_by_worker)
from repro.sim.config import DEFAULT_CONFIG

_SMOKE = bool(os.environ.get("REPRO_SMOKE"))

PARAMS = ServiceParams(n_clients=64, n_requests=20_000)
#: The scheme-keyed closed loop: calibration + feedback dispatch.  The
#: event-driven feedback recurrence is inherently sequential, so the
#: cell serves multi-page requests — the streamed server, not the
#: dispatch loop, carries most of the event volume (as it does at any
#: production request size).
CLOSED = ServiceParams(n_clients=16, n_requests=8_000, arrival="closed",
                       dispatch="replay", pattern="burst", read_words=16)
#: Multi-core replay: four worker slots, sharded onto four simulated
#: cores with cross-core shootdown accounting (docs/MULTICORE.md).
MULTICORE = ServiceParams(n_clients=64, n_requests=20_000, workers=4)
#: The scale target: one million requests over 256 workers
#: (ROADMAP "millions of users"; REPRO_SMOKE shrinks it 20x).
MILLION = ServiceParams(n_clients=64,
                        n_requests=50_000 if _SMOKE else 1_000_000,
                        workers=256)
#: Scheduler overhead: the same cell planned with the full control loop
#: engaged — SLO valve, affinity selection, epoch rebalancing
#: (docs/SCHEDULING.md) — gated against the static planner's entry.
SCHED = replace(MULTICORE, pattern="churn", sched_policy="slo_adaptive",
                slo_p99_cycles=20000.0, sched_epoch_batches=16)

#: Accumulated machine-readable results, flushed by the module fixture.
_RESULTS = {}


@pytest.fixture(scope="module")
def generated():
    trace, _ws = generate_service_trace(PARAMS)
    return trace, build_plan(PARAMS), batch_boundaries(trace)


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Write BENCH_service.json after all benches in this module ran."""
    yield
    out_dir = pathlib.Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "BENCH_service.json"
    path.write_text(json.dumps(
        {"params": {"n_clients": PARAMS.n_clients,
                    "n_requests": PARAMS.n_requests,
                    "arrival": PARAMS.arrival,
                    "batching": PARAMS.batching},
         "results": _RESULTS}, indent=2, sort_keys=True) + "\n")
    print(f"\n[machine-readable results saved to {path}]")


def _record(name: str, benchmark, events: int, **extra) -> None:
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean_s = getattr(stats, "mean", None) if stats is not None else None
    _RESULTS[name] = {
        "events": events,
        "mean_s": mean_s,
        "events_per_s": (events / mean_s if mean_s else None),
        **extra,
    }


@pytest.mark.parametrize("scheme", ["baseline", "mpk_virt", "domain_virt"])
def test_marked_replay_throughput(benchmark, generated, scheme):
    trace, plan, marks = generated

    def replay():
        # Marked isolated-context replay: the path run_service executes
        # for every (client count, scheme) cell.
        return replay_one(trace, scheme, marks=marks)

    stats = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert stats.mark_cycles and len(stats.mark_cycles) == len(marks)
    summary = account(plan, trace, stats,
                      frequency_hz=DEFAULT_CONFIG.processor.frequency_hz)
    benchmark.extra_info["events"] = len(trace)
    _record(f"replay:{scheme}", benchmark, len(trace),
            served=summary.n_served,
            p99_cycles=summary.p99,
            throughput_rps=summary.throughput_rps)


def test_service_generation_throughput(benchmark):
    trace, _ws = benchmark.pedantic(
        lambda: generate_service_trace(PARAMS), rounds=3, iterations=1)
    assert len(trace) > 0
    _record("generate:service-64c", benchmark, len(trace))


def test_million_request_generation_throughput(benchmark):
    # The headline scale entry: synthesize + plan + stream-serve the
    # million-request, 256-worker cell.  Two rounds keep the bench job
    # bounded; the throughput is chunk-streamed and stable.
    trace, _ws = benchmark.pedantic(
        lambda: generate_service_trace(MILLION), rounds=2, iterations=1)
    assert len(trace) > MILLION.n_requests
    _record("generate:service-1m", benchmark, len(trace),
            requests=MILLION.n_requests, workers=MILLION.workers,
            smoke=_SMOKE)


def test_closed_loop_generation_throughput(benchmark):
    # Scheme-keyed generation: the first round pays the calibration
    # replay, later rounds hit the process-local clock memo — the mean
    # mirrors what a sweep over several client counts amortizes to.
    trace, _ws = benchmark.pedantic(
        lambda: generate_service_trace_keyed(CLOSED, "domain_virt"),
        rounds=3, iterations=1)
    assert len(trace) > 0
    _record("generate:service-closed-dv", benchmark, len(trace))


def test_multicore_sharded_replay_throughput(benchmark):
    # The workers=4 path: shard the trace per slot, replay every shard
    # (serially here — REPRO_JOBS parallelism is host-dependent), and
    # account the merged run.  Events counted once per measured event.
    trace, _ws = generate_service_trace(MULTICORE)
    plan = build_plan(MULTICORE)
    shards = shard_by_worker(trace)
    assert len(shards) == MULTICORE.workers

    def replay():
        return [replay_one(shard.trace, "mpk_virt", marks=shard.marks,
                           n_cores=len(shards)) for shard in shards]

    stats = benchmark.pedantic(replay, rounds=3, iterations=1)
    summary = account_sharded(plan, shards, stats,
                              frequency_hz=DEFAULT_CONFIG.processor
                              .frequency_hz)
    assert summary.cross_core_shootdown_cycles > 0
    events = sum(len(shard.trace) for shard in shards)
    _record("replay:mpk_virt-4core", benchmark, events,
            served=summary.n_served,
            p99_cycles=summary.p99,
            throughput_rps=summary.throughput_rps,
            cross_core_shootdown_cycles=summary
            .cross_core_shootdown_cycles)


def test_static_planning_throughput(benchmark):
    # The dispatch simulation alone (no trace, no replay): the baseline
    # the scheduler entry below is compared against.
    plan = benchmark.pedantic(lambda: build_plan(MULTICORE), rounds=3,
                              iterations=1)
    offered = plan.n_served + len(plan.rejected) + len(plan.shed)
    assert plan.epochs == 0
    _record("plan:static-4w", benchmark, offered)


def test_sched_policy_planning_throughput(benchmark):
    # Scheduler overhead: the identical cell planned under the heaviest
    # policy — rolling p99 window, backlog estimator, affinity-first
    # selection, epoch rebalancing.  The regression gate holds this
    # within the usual threshold of its committed baseline, so the
    # control loop cannot quietly become super-linear in the queue.
    plan = benchmark.pedantic(lambda: build_plan(SCHED), rounds=3,
                              iterations=1)
    offered = plan.n_served + len(plan.rejected) + len(plan.shed)
    assert plan.epochs > 0
    _record("plan:slo_adaptive-4w", benchmark, offered,
            migrations=plan.migrations, shed=len(plan.shed))


def test_accounting_throughput(benchmark, generated):
    trace, plan, marks = generated
    stats = replay_one(trace, "domain_virt", marks=marks)

    def run():
        return account(plan, trace, stats,
                       frequency_hz=DEFAULT_CONFIG.processor.frequency_hz)

    summary = benchmark.pedantic(run, rounds=3, iterations=1)
    assert summary.latency.count == plan.n_served
    _record("account:service-64c", benchmark, plan.n_served)
