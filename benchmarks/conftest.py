"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures,
prints it, and writes it under ``benchmarks/out/`` so the results survive
the run.  Operation counts follow the package defaults; set ``REPRO_OPS``
(e.g. ``REPRO_OPS=5``) for higher-fidelity sweeps.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import ExperimentRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="session")
def save_report():
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> str:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return text

    return save
