"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures,
prints it, and writes it under ``benchmarks/out/`` so the results survive
the run.  Operation counts follow the package defaults; set ``REPRO_OPS``
(e.g. ``REPRO_OPS=5``) for higher-fidelity sweeps.

The session runner is backed by one shared experiment engine, so the
whole harness benefits from the persistent trace cache
(``REPRO_TRACE_CACHE``) and replays fan out over ``REPRO_JOBS`` worker
processes.  The engine's cache statistics print at the end of the
session — a fully warm run reports zero generations.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.engine import Engine
from repro.experiments.runner import ExperimentRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def engine():
    engine = Engine()
    yield engine
    stats = engine.cache_stats
    print(f"\n[trace cache: {stats.generations} generated, "
          f"{stats.disk_hits} disk hits, {stats.memory_hits} memory hits]")


@pytest.fixture(scope="session")
def runner(engine):
    return ExperimentRunner(engine=engine)


@pytest.fixture(scope="session")
def save_report():
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> str:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return text

    return save
