"""Thread-count scaling: the shootdown bill grows with threads.

Section V: a key remap must invalidate stale TLB entries on every core
running a thread of the process, so MPK virtualization's invalidation
cost is 286 cycles x number_of_threads — while domain virtualization has
no shootdowns at all.  This bench sweeps 1/2/4 worker threads over the
same operation budget and reports each scheme's overhead.
"""

from repro.experiments.reporting import format_table
from repro.sim.simulator import (MULTI_PMO_SCHEMES, overhead_over_lowerbound,
                                 replay_trace, viable_schemes)
from repro.workloads.micro import MicroParams, generate_micro_trace

SCHEMES = ("libmpk", "mpk_virt", "domain_virt")


def test_thread_scaling(benchmark, save_report):
    def run():
        rows = []
        invalidation_cycles = {}
        for threads in (1, 2, 4):
            params = MicroParams(benchmark="avl", n_pools=256,
                                 operations=1200, threads=threads)
            trace, ws = generate_micro_trace(params)
            results = replay_trace(trace, ws,
                                   viable_schemes(MULTI_PMO_SCHEMES, 256))
            rows.append(
                [f"{threads} thread(s)"]
                + [overhead_over_lowerbound(results, s) for s in SCHEMES])
            stats = results["mpk_virt"]
            invalidation_cycles[threads] = (
                stats.buckets["tlb_invalidations"], stats.evictions)
        return rows, invalidation_cycles

    rows, invalidations = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("thread_scaling", format_table(
        "Thread scaling (AVL, 256 PMOs, % over lowerbound)",
        ["Variant"] + list(SCHEMES), rows))

    # Per-eviction shootdown cost must scale ~linearly with threads.
    per_eviction = {t: cycles / max(evictions, 1)
                    for t, (cycles, evictions) in invalidations.items()}
    assert per_eviction[2] > 1.8 * per_eviction[1]
    assert per_eviction[4] > 3.5 * per_eviction[1]
    # DV stays flat: its overhead must not grow with the thread count
    # anywhere near MPKV's growth.
    dv = [row[3] for row in rows]
    mpkv = [row[2] for row in rows]
    assert mpkv[2] / mpkv[0] > dv[2] / dv[0]
