#!/usr/bin/env python
"""Quickstart: pools, attach/detach, domain protection, and a timing run.

Walks through the paper's core ideas in five minutes:

1. create a persistent memory object (a pool) and store a data structure
   in it (Table I API);
2. attach it to a process — the attach returns the PMO/domain ID;
3. see temporal and spatial isolation in action (Figure 2): accesses are
   legal only inside a SETPERM window, and only for the thread that
   opened it;
4. replay an instrumented trace under the paper's schemes and compare
   their overheads.

Run:  python examples/quickstart.py      (REPRO_SMOKE=1 shrinks it)
"""

import os

from repro.errors import ProtectionFault
from repro.permissions import Perm
from repro.sim.simulator import replay_trace
from repro.workloads.base import PerOpPolicy, Workspace
from repro.workloads.datastructures import PersistentRBTree

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
N_KEYS = 16 if SMOKE else 64


def main() -> None:
    # -- 1. a persistent memory object ------------------------------------
    ws = Workspace(PerOpPolicy(), seed=42)
    pool = ws.create_and_attach("quickstart-pool", 8 << 20)
    print(f"attached PMO {pool.pool.name!r}: domain ID {pool.domain}, "
          f"VA base {pool.base:#x}")

    # -- 2. a data structure living in the pool ---------------------------
    tree = PersistentRBTree(ws, [pool])
    with ws.untraced():  # setup phase: not part of the measured trace
        for key in range(1, N_KEYS + 1):
            tree.insert(key, key * key)
    print(f"built a red-black tree with {len(tree)} persistent nodes")

    # -- 3. instrumented operations (grant +W per op, revoke after) -------
    for key in (100, 101, 102):
        with ws.operation():
            tree.insert(key, key * key)
    with ws.untraced():
        assert tree.lookup(101) == 101 * 101
        tree.check_invariants()
    print("inserted 3 keys inside permission windows; invariants hold")

    # -- 4. replay under every scheme --------------------------------------
    trace = ws.finish()
    results = replay_trace(
        trace, ws, ("lowerbound", "libmpk", "mpk_virt", "domain_virt"))
    print(f"\ntrace: {len(trace)} events, "
          f"{results['baseline'].pmo_accesses} PMO accesses, "
          f"{results['lowerbound'].perm_switches} permission switches")
    print(f"{'scheme':14s} {'cycles':>12s} {'overhead':>10s}")
    for name, stats in results.items():
        overhead = ("-" if name == "baseline"
                    else f"{stats.overhead_percent():.2f}%")
        print(f"{name:14s} {stats.cycles:12.0f} {overhead:>10s}")

    # -- 5. protection in action: an uninstrumented write faults ----------
    ws2 = Workspace(PerOpPolicy(), seed=0)
    victim = ws2.create_and_attach("victim", 1 << 20)
    oid = victim.pool.pmalloc(64)
    ws2.recorder.store(ws2.tid, victim.va_of(oid))  # a rogue store event
    rogue_trace = ws2.finish()
    try:
        replay_trace(rogue_trace, ws2, ("domain_virt",))
    except ProtectionFault as fault:
        print(f"\nrogue store blocked by domain virtualization: {fault}")


if __name__ == "__main__":
    main()
