#!/usr/bin/env python
"""Crash consistency: durable transactions surviving power failure.

PMOs must remain consistent across crashes (Section II-C).  This demo
keeps bank accounts in a pool and transfers money between them inside
undo-logged transactions; a simulated power failure in the middle of a
transfer — even one whose in-place writes already reached the media —
rolls back cleanly on recovery, and the total balance is conserved.

Run:  python examples/crash_recovery.py      (REPRO_SMOKE=1 shrinks it)
"""

import os
import random

from repro.pmo import Pool, TransactionManager

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
N_ACCOUNTS = 16
N_ROUNDS = 40 if SMOKE else 200
INITIAL_BALANCE = 1_000


def balance_slots(pool):
    root = pool.root(N_ACCOUNTS * 8)
    return [root.offset + i * 8 for i in range(N_ACCOUNTS)]


def total(pool, slots):
    return sum(pool.memory.read_u64(slot) for slot in slots)


def main() -> None:
    pool = Pool(pool_id=1, name="bank", size=1 << 20,
                track_persistence=True)
    txm = TransactionManager(pool.memory)
    slots = balance_slots(pool)

    # Fund the accounts durably.
    tx = txm.begin()
    for slot in slots:
        tx.write_u64(slot, INITIAL_BALANCE)
    tx.commit()
    grand_total = total(pool, slots)
    print(f"{N_ACCOUNTS} accounts funded; total = {grand_total}")

    rng = random.Random(2026)
    committed = 0
    crashes = 0
    for round_ in range(N_ROUNDS):
        src, dst = rng.sample(range(N_ACCOUNTS), 2)
        amount = rng.randrange(1, 250)
        tx = txm.begin()
        src_balance = int.from_bytes(tx.read(slots[src], 8), "little")
        if src_balance < amount:
            tx.abort()
            continue
        tx.write_u64(slots[src], src_balance - amount)
        # Crash 10% of transfers here — after the debit, before the
        # credit.  Worst case: force the torn debit onto the media.
        if rng.random() < 0.10:
            pool.memory.persist(slots[src], 8)
            txm.crash()
            crashes += 1
            assert txm.needs_recovery
            rolled_back = txm.recover()
            assert rolled_back >= 1
            assert total(pool, slots) == grand_total, "money vanished!"
            continue
        dst_balance = int.from_bytes(tx.read(slots[dst], 8), "little")
        tx.write_u64(slots[dst], dst_balance + amount)
        tx.commit()
        committed += 1
        assert total(pool, slots) == grand_total, "money vanished!"

    print(f"{committed} transfers committed, {crashes} crashed mid-flight")
    print(f"after recovery, total is still {total(pool, slots)} "
          f"(= {grand_total})")
    print("crash consistency holds: every crashed transfer rolled back")


if __name__ == "__main__":
    main()
