#!/usr/bin/env python
"""Why 16 keys are not enough: the Section IV-B grouping argument, live.

A server with N client PMOs and per-thread intents (each worker may write
its own client's PMO, read a shared catalog, and must not touch anyone
else's) has to squeeze N domains onto 16 MPK keys.  This demo runs the
best-effort grouping the defender could do and counts the permission
escalations — then shows the virtualization schemes make the problem
vanish (one domain per PMO, no grouping at all).

Run:  python examples/key_grouping.py [n_clients]
      (REPRO_SMOKE=1 shrinks it)
"""

import os
import sys

from repro.permissions import Perm
from repro.core.grouping import (exposure_report, greedy_grouping,
                                 weakening)

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
N_KEYS = 16


def build_intents(n_clients: int):
    """Domain -> thread -> intended permission.

    Domain 0 is a shared catalog (read for everyone); domains 1..N are
    client PMOs, writable only by their own worker thread.
    """
    threads = list(range(1, n_clients + 1))
    intents = {0: {tid: Perm.R for tid in threads}}
    for client in range(1, n_clients + 1):
        intents[client] = {tid: (Perm.RW if tid == client else Perm.NONE)
                           for tid in threads}
    return intents


def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else (
        24 if SMOKE else 48)
    intents = build_intents(n_clients)
    print(f"{n_clients} client PMOs + 1 shared catalog, "
          f"{N_KEYS} protection keys\n")

    grouping = greedy_grouping(intents, n_keys=N_KEYS)
    cost = weakening(grouping, intents)
    sizes = sorted((len(group) for group in grouping), reverse=True)
    print(f"best-effort grouping onto {N_KEYS} keys "
          f"(group sizes {sizes}):")
    print(f"  {cost} permission escalations — e.g.:")
    for line in exposure_report(grouping, intents).splitlines()[:6]:
        print(f"    {line}")
    print()

    # Each escalation is a (thread, domain) pair that Heartbleed-style
    # bugs can now reach.  With domain virtualization there is no
    # grouping: every PMO keeps its own domain.
    singleton = [[domain] for domain in intents]
    print("with virtualized domains (one per PMO): "
          f"{weakening(singleton, intents)} escalations")
    print("\nthis is the paper's Section IV-B argument: any key sharing "
          "weakens isolation;\nvirtualizing domains removes the sharing "
          "entirely.")


if __name__ == "__main__":
    main()
