#!/usr/bin/env python
"""Secure server: per-client PMOs — the paper's Heartbleed motivation.

A server keeps each client's private data (think TLS keys, passwords) in
its own PMO/domain.  A worker only ever holds permission for the client
it is currently serving, so a compromised worker — the Heartbleed
scenario — cannot read other clients' data.  This demo now runs on
``repro.service``, the full multi-tenant serving layer (seeded traffic,
admission control, domain-aware batching, per-request latency).

The demo shows:

1. default MPK cannot even represent the scenario past 15 clients
   (pkey_alloc fails — Section I's scalability wall);
2. domain virtualization isolates 64 clients: a simulated over-read into
   another client's PMO raises a protection fault;
3. the cost of that protection, measured where a server feels it —
   throughput and tail latency — via a marked replay of the same run.

Run:  python examples/secure_server.py      (REPRO_SMOKE=1 shrinks it)
"""

import os

from repro.engine import Engine, WorkloadSpec
from repro.errors import PkeyError, ProtectionFault
from repro.service import (ServiceParams, ServiceWorkload, account,
                           batch_boundaries, build_plan)
from repro.sim.simulator import replay_trace

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
N_CLIENTS = 64
N_REQUESTS = 120 if SMOKE else 800


def main() -> None:
    params = ServiceParams(n_clients=N_CLIENTS, n_requests=N_REQUESTS)

    # -- 1. default MPK cannot scale to many clients ----------------------
    # One protection key per client: pkey_alloc hits the hardware wall.
    from repro.os.kernel import Kernel
    mpk_process = Kernel().create_process()
    allocated = 0
    try:
        for _ in range(N_CLIENTS):
            mpk_process.pkey_alloc()
            allocated += 1
    except PkeyError:
        pass
    print(f"default MPK: key allocation failed after {allocated} clients "
          f"(needed {N_CLIENTS}) — the 16-key wall")

    # -- 2. domain virtualization serves and isolates all clients ----------
    plan = build_plan(params)
    workload = ServiceWorkload(params)
    workload.serve(plan)
    # The compromised worker: it "over-reads" into client 1's PMO (no
    # permission window covers it).
    workload.overread(victim=1)
    trace = workload.finish()
    try:
        replay_trace(trace, workload.ws, ("domain_virt",))
        raise AssertionError("the over-read should have faulted!")
    except ProtectionFault as fault:
        print(f"over-read into client 1's PMO blocked: "
              f"domain {fault.domain}, address {fault.vaddr:#x}")

    # -- 3. what does this protection cost the server? ---------------------
    # The same run, honest this time (the spec regenerates it without the
    # attack), replayed with per-batch marks so each request gets a
    # latency — the serving view of Table VII's overheads.
    engine = Engine()
    spec = WorkloadSpec.service(n_clients=N_CLIENTS, n_requests=N_REQUESTS)
    honest = engine.trace_for(spec)
    marks = batch_boundaries(honest)
    schemes = ("lowerbound", "mpk_virt", "domain_virt")
    cell = engine.replay_marked(spec, schemes, marks)
    frequency = engine.config.processor.frequency_hz
    print(f"\n{plan.n_served} requests served across {N_CLIENTS} isolated "
          f"clients ({plan.coalesced} coalesced into shared windows, "
          f"{len(plan.rejected)} rejected):")
    print(f"  {'scheme':12s} {'overhead':>9s} {'p50':>9s} {'p99':>9s} "
          f"{'throughput':>12s}")
    for name in schemes:
        stats = cell[name]
        summary = account(plan, honest, stats, frequency_hz=frequency)
        print(f"  {name:12s} {stats.overhead_percent():8.2f}% "
              f"{summary.p50:9.0f} {summary.p99:9.0f} "
              f"{summary.throughput_rps:10.0f}/s")


if __name__ == "__main__":
    main()
