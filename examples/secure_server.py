#!/usr/bin/env python
"""Secure server: per-client PMOs — the paper's Heartbleed motivation.

A server keeps each client's private data (think TLS keys, passwords) in
its own PMO/domain.  A worker thread serves one client at a time and only
ever holds permission for that client's domain, so a compromised worker —
the Heartbleed scenario — cannot read other clients' data.

The demo shows:

1. default MPK cannot even represent the scenario past 15 clients
   (pkey_alloc fails — Section I's scalability wall);
2. domain virtualization isolates 64 clients: a simulated over-read into
   another client's PMO raises a protection fault;
3. the overhead of doing so is small (a replayed request trace).

Run:  python examples/secure_server.py
"""

from repro.errors import PkeyError, ProtectionFault
from repro.permissions import Perm
from repro.sim.simulator import replay_trace
from repro.workloads.base import UnprotectedPolicy, Workspace

N_CLIENTS = 64
SECRET_SIZE = 256


def build_server(n_clients):
    """One PMO per client, each holding that client's secret blob.

    Client domains are *deny by default* — no thread can touch a client's
    PMO outside an explicit serving window.  (This is stricter than the
    microbenchmarks' global-read policy, which is exactly the point.)
    """
    ws = Workspace(UnprotectedPolicy(), seed=7)
    clients = []
    for i in range(n_clients):
        pool = ws.create_and_attach(f"client-{i:03d}", 1 << 20)
        with ws.untraced():
            secret = pool.pool.pmalloc(SECRET_SIZE)
            ws.mem.write_bytes(secret, 0,
                               f"secret-of-client-{i}".encode().ljust(64))
        clients.append((pool, secret))
    return ws, clients


def serve_request(ws, pool, secret, payload):
    """One request: SETPERM window around the client's PMO accesses."""
    ws.recorder.perm(ws.tid, pool.domain, Perm.RW)
    ws.mem.read_bytes(secret, 0, 64)
    ws.mem.write_u64(secret, 64, payload)
    ws.recorder.perm(ws.tid, pool.domain, Perm.NONE)
    ws.compute(2000)  # request parsing, crypto, response formatting
    ws.stack_access(n=4)


def main() -> None:
    # -- 1. default MPK cannot scale to many clients ----------------------
    # One protection key per client: pkey_alloc hits the hardware wall.
    from repro.os.kernel import Kernel
    mpk_process = Kernel().create_process()
    allocated = 0
    try:
        for _ in range(N_CLIENTS):
            mpk_process.pkey_alloc()
            allocated += 1
    except PkeyError:
        pass
    print(f"default MPK: key allocation failed after {allocated} clients "
          f"(needed {N_CLIENTS}) — the 16-key wall")

    # -- 2. domain virtualization serves and isolates all clients ----------
    ws, clients = build_server(N_CLIENTS)
    rng = ws.rng
    for request in range(500):
        pool, secret = clients[rng.randrange(N_CLIENTS)]
        serve_request(ws, pool, secret, request)

    # The compromised worker: while serving client 0, it "over-reads" into
    # client 1's PMO (no permission window covers it).
    victim_pool, victim_secret = clients[1]
    ws.recorder.load(ws.tid, victim_pool.va_of(victim_secret))
    trace = ws.finish()

    try:
        replay_trace(trace, ws, ("domain_virt",))
        raise AssertionError("the over-read should have faulted!")
    except ProtectionFault as fault:
        print(f"over-read into client 1's PMO blocked: "
              f"domain {fault.domain}, address {fault.vaddr:#x}")

    # -- 3. what does this protection cost? --------------------------------
    trace.events.pop()  # drop the attack; measure the honest requests
    results = replay_trace(trace, ws,
                           ("lowerbound", "mpk_virt", "domain_virt"))
    print(f"\n500 requests across {N_CLIENTS} isolated clients:")
    for name in ("lowerbound", "mpk_virt", "domain_virt"):
        print(f"  {name:12s} overhead "
              f"{results[name].overhead_percent():6.2f}% over unprotected")


if __name__ == "__main__":
    main()
