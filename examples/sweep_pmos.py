#!/usr/bin/env python
"""Mini Figure 6: sweep the PMO count for one microbenchmark.

Regenerates a scaled-down slice of the paper's headline figure — the
overhead of libmpk vs the two hardware schemes as the number of attached
PMOs grows — and renders it as a log2 ASCII chart, mirroring the paper's
2^k y-axis.

Run:  python examples/sweep_pmos.py [benchmark] [ops]
      benchmark in {avl, rbt, bt, ll, ss} (default avl)
      REPRO_SMOKE=1 shrinks the sweep
"""

import os
import sys

from repro.experiments.figure6 import FIGURE6_SCHEMES
from repro.experiments.reporting import format_table, log2_chart
from repro.sim.simulator import (MULTI_PMO_SCHEMES, overhead_over_lowerbound,
                                 replay_trace)
from repro.workloads.micro import MICRO_LABELS, MicroParams, \
    generate_micro_trace

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
POINTS = (16, 32, 64) if SMOKE else (16, 32, 64, 128, 256)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "avl"
    operations = int(sys.argv[2]) if len(sys.argv) > 2 else (
        120 if SMOKE else 600)

    series = {scheme: {} for scheme in FIGURE6_SCHEMES}
    for n_pools in POINTS:
        params = MicroParams(benchmark=benchmark, n_pools=n_pools,
                             operations=operations, initial_nodes=64)
        trace, ws = generate_micro_trace(params)
        results = replay_trace(trace, ws, MULTI_PMO_SCHEMES)
        for scheme in FIGURE6_SCHEMES:
            series[scheme][n_pools] = overhead_over_lowerbound(
                results, scheme)
        evictions = results["mpk_virt"].evictions
        print(f"  swept {n_pools:4d} PMOs "
              f"({len(trace)} events, {evictions} key evictions)")

    headers = ["Scheme"] + [f"{x} PMOs" for x in POINTS]
    rows = [[scheme] + [series[scheme][x] for x in POINTS]
            for scheme in FIGURE6_SCHEMES]
    print()
    print(format_table(
        f"Overhead% over lowerbound — {MICRO_LABELS[benchmark]}",
        headers, rows))
    print()
    print(log2_chart(f"{MICRO_LABELS[benchmark]} (log2 view, like Fig. 6)",
                     series))


if __name__ == "__main__":
    main()
