#!/usr/bin/env python
"""Mini Figure 6: sweep the PMO count for one microbenchmark.

Regenerates a scaled-down slice of the paper's headline figure — the
overhead of libmpk vs the two hardware schemes as the number of attached
PMOs grows — and renders it as a log2 ASCII chart, mirroring the paper's
2^k y-axis.

The sweep itself lives in ``scenarios/sweep_pmos.yaml``; this script
loads that document, applies the command-line overrides, and replays the
compiled grid point by point so it can narrate progress.  Running the
scenario through ``python -m repro.experiments run sweep_pmos`` replays
the exact same specs (shared trace cache) with the stock leaderboard
report instead of the chart.

Run:  python examples/sweep_pmos.py [benchmark] [ops]
      benchmark in {avl, rbt, bt, ll, ss} (default avl)
      REPRO_SMOKE=1 shrinks the sweep
"""

import dataclasses
import sys

from repro.engine import Engine
from repro.experiments.figure6 import FIGURE6_SCHEMES
from repro.experiments.reporting import format_table, log2_chart
from repro.scenario import SCENARIO_DIR, compile_scenario, load_scenario
from repro.sim.simulator import (MULTI_PMO_SCHEMES,
                                 overhead_over_lowerbound, viable_schemes)
from repro.workloads.micro import MICRO_LABELS


def main() -> None:
    scenario = load_scenario(SCENARIO_DIR / "sweep_pmos.yaml")
    overrides = {}
    if len(sys.argv) > 1:
        overrides["benchmark"] = sys.argv[1]
    if len(sys.argv) > 2:
        overrides["operations"] = int(sys.argv[2])
    if overrides:
        params = dict(scenario.params)
        params.update(overrides)
        smoke_params = dict(scenario.smoke_params)
        smoke_params.update(overrides)  # argv ops beats the smoke default
        scenario = dataclasses.replace(
            scenario, params=tuple(params.items()),
            smoke_params=tuple(smoke_params.items()))
    compiled = compile_scenario(scenario, scale=1.0)
    benchmark = compiled.cells[0].spec.params.benchmark

    engine = Engine()
    series = {scheme: {} for scheme in FIGURE6_SCHEMES}
    points = []
    for cell in compiled.cells:
        n_pools = cell.axes_dict["n_pools"]
        results = engine.replay_grid(
            [(cell.spec, cell.config)],
            viable_schemes(MULTI_PMO_SCHEMES, n_pools))[0]
        for scheme in FIGURE6_SCHEMES:
            series[scheme][n_pools] = overhead_over_lowerbound(
                results, scheme)
        points.append(n_pools)
        events = len(engine.trace_for(cell.spec))
        evictions = results["mpk_virt"].evictions
        print(f"  swept {n_pools:4d} PMOs "
              f"({events} events, {evictions} key evictions)")
        engine.release(cell.spec)

    headers = ["Scheme"] + [f"{x} PMOs" for x in points]
    rows = [[scheme] + [series[scheme][x] for x in points]
            for scheme in FIGURE6_SCHEMES]
    print()
    print(format_table(
        f"Overhead% over lowerbound — {MICRO_LABELS[benchmark]}",
        headers, rows))
    print()
    print(log2_chart(f"{MICRO_LABELS[benchmark]} (log2 view, like Fig. 6)",
                     series))


if __name__ == "__main__":
    main()
